//! # tuffy-store — durable grounded generations
//!
//! Grounding is the expensive step of MLN inference (paper §3.1); the
//! serving engine amortizes it across queries, and this crate amortizes
//! it across **process lifetimes**: a grounded generation — program,
//! evidence, atom registry, MRF clause arenas, statistics — is written
//! once to a single segment file and reloaded in milliseconds, with the
//! loaded snapshot answering queries **bit-identically** (every atom id,
//! every `f64` bit pattern) to the engine that saved it.
//!
//! ## File format
//!
//! One file, extension-agnostic (the engine uses `generation.tst`), laid
//! out as checksummed, page-aligned segments. All integers are
//! **little-endian**; `f64`s are stored as raw IEEE-754 bit patterns so
//! NaNs and signed zeros round-trip exactly.
//!
//! ```text
//! file    := header toc pad segment*
//! header  := "TUFFYST1" version:u32 seg_count:u32 toc_len:u64
//!            toc_checksum:u64 file_len:u64            ; 40 bytes
//! toc     := entry{seg_count}
//! entry   := name_len:u32 name:bytes offset:u64 len:u64 checksum:u64
//! segment := raw bytes at a 4096-aligned offset, zero-padded tail
//! ```
//!
//! Checksums are **FNV-1a-64** — over the TOC bytes for `toc_checksum`,
//! over each segment's payload for its entry. [`format::SegmentFile::open`]
//! verifies the magic, version, declared file length, and *every*
//! checksum before any segment is interpreted, so truncation (crash),
//! torn writes, and bit flips all surface as typed [`StoreError`]s —
//! never panics, never silently-wrong answers.
//!
//! The segments of a generation, in file order: `symbols` (strings in id
//! order, re-interned densely on load), `types`, `predicates`, `rules`,
//! `domains`, `evidence` (insertion order), `registry` (ground atoms in
//! atom-id order), `mrf` (the persisted clause columns of
//! [`tuffy_mrf::MrfColumns`]; the violation column and occurrence CSR are
//! re-derived on load), `stats`, and `config` (opaque engine bytes).
//!
//! ## Crash safety
//!
//! [`format::SegmentFileWriter::write_atomic`] assembles the full image
//! in memory, writes it to a sibling `*.tmp` file, `fsync`s it, renames
//! it over the destination, and `fsync`s the parent directory. A crash
//! at any point leaves either the previous generation or the new one —
//! a reader can never observe a tear, and a leftover `*.tmp` is ignored
//! by loads and overwritten by the next save.
//!
//! ## Delta write-ahead log
//!
//! A serving engine commits incremental `apply` deltas *between* base
//! generations; losing them on a crash would roll the lineage back to
//! the last explicit save. The [`wal`] module closes that window: each
//! committed delta is appended to a checksummed, length-prefixed log
//! (`TUFFYWL1`) and `fsync`ed **before** the new generation is
//! acknowledged, so replaying base + WAL lands on the exact pre-crash
//! generation. Torn tail records are truncated, interior corruption is
//! a typed error, and checkpoints fold the log into a fresh base. See
//! the [`wal`] module docs for the record grammar, the torn-tail rule,
//! and the [`wal::WalStorage`] fault-injection seam the chaos suite
//! drives.
//!
//! ## Relation to out-of-core grounding
//!
//! This crate persists *finished* generations. Its sibling mechanism —
//! spilling *in-flight* join state to sorted on-disk runs when grounding
//! exceeds a memory budget — lives in [`tuffy_rdbms::spill`] behind the
//! [`tuffy_rdbms::StorageBackend`] trait; see those docs for the backend
//! contract and spill semantics.

pub mod bytes;
pub mod error;
pub mod format;
pub mod model;
pub mod wal;

pub use bytes::OwnedBytes;
pub use error::StoreError;
pub use format::{SegmentFile, SegmentFileWriter, MAGIC, PAGE, VERSION};
pub use model::{load_generation, save_generation, LoadedGeneration};
pub use wal::{
    FaultPlan, FaultyStorage, FileStorage, MemStorage, Wal, WalOpenReport, WalRecord, WalStorage,
    WAL_MAGIC, WAL_VERSION,
};
