//! Golden test pinning the `explain_schedule` rendering for a
//! representative MRF (the style of `crates/grounder/tests/
//! explain_golden.rs`): any change to Algorithm 3's merge order, the
//! budget→β translation, the footprint estimates, or the FFD packing
//! shows up here as a readable diff.

use tuffy_mln::weight::Weight;
use tuffy_mrf::{Lit, Mrf, MrfBuilder};
use tuffy_search::{Scheduler, SchedulerConfig, WalkSatParams};

/// Example 2's two bridged 3-atom clusters plus an independent Example 1
/// component: exercises a cut clause, oversized-partition bins, and a
/// comfortably fitting bin in one schedule.
fn representative_mrf() -> Mrf {
    let mut b = MrfBuilder::new();
    let cluster = |b: &mut MrfBuilder, base: u32| {
        for i in 0..3u32 {
            for j in (i + 1)..3 {
                b.add_clause(
                    vec![Lit::neg(base + i), Lit::pos(base + j)],
                    Weight::Soft(2.0),
                );
                b.add_clause(
                    vec![Lit::pos(base + i), Lit::neg(base + j)],
                    Weight::Soft(2.0),
                );
            }
        }
        for i in 0..3u32 {
            b.add_clause(vec![Lit::pos(base + i)], Weight::Soft(0.5));
        }
    };
    cluster(&mut b, 0);
    cluster(&mut b, 3);
    b.add_clause(vec![Lit::neg(0), Lit::pos(3)], Weight::Soft(1.0));
    b.add_clause(vec![Lit::pos(6)], Weight::Soft(1.0));
    b.add_clause(vec![Lit::pos(7)], Weight::Soft(1.0));
    b.add_clause(vec![Lit::pos(6), Lit::pos(7)], Weight::Soft(-1.0));
    b.finish()
}

/// β = 21 splits the clusters (their bridge becomes the cut) and leaves
/// the small component whole. The byte estimates of the dense clusters
/// exceed the raw budget — the documented slack between the size-metric
/// β bound and real clause overhead — which the report flags per bin.
#[test]
fn schedule_report_is_pinned() {
    let m = representative_mrf();
    let scheduler = Scheduler::new(
        &m,
        SchedulerConfig {
            threads: 2,
            mem_budget: Some(21 * tuffy_mrf::memory::BYTES_PER_SIZE_UNIT),
            rounds: 3,
            search: WalkSatParams::default(),
        },
    );
    let expected = "\
Schedule: 3 partitions in 3 bins (β=21, budget 504 B, threads=2, rounds=3)
├─ cut: 1 clauses (hard 0, soft |w| 1.0)
├─ Bin 0  est 574 B (over budget: single oversized partition)
│  └─ P0  atoms=3 internal=9 cut=1  est 574 B
├─ Bin 1  est 574 B (over budget: single oversized partition)
│  └─ P1  atoms=3 internal=9 cut=1  est 574 B
└─ Bin 2  est 192 B
   └─ P2  atoms=2 internal=3 cut=0  est 192 B
";
    assert_eq!(scheduler.explain(), expected);
}

/// Without a budget the same MRF schedules as plain connected components
/// in one unbounded bin, with the Gauss-Seidel machinery switched off.
#[test]
fn unbudgeted_schedule_report_is_pinned() {
    let m = representative_mrf();
    let scheduler = Scheduler::new(
        &m,
        SchedulerConfig {
            threads: 1,
            mem_budget: None,
            rounds: 3,
            search: WalkSatParams::default(),
        },
    );
    let expected = "\
Schedule: 2 partitions in 1 bins (β=∞, no memory budget, threads=1, rounds=1)
├─ cut: none (partitions are exact connected components)
└─ Bin 0  est 1.4 KB
   ├─ P0  atoms=6 internal=19 cut=0  est 1.2 KB
   └─ P1  atoms=2 internal=3 cut=0  est 192 B
";
    assert_eq!(scheduler.explain(), expected);
}
