//! Property tests: WalkSAT's incremental bookkeeping always matches a
//! full recomputation; union-find components match a BFS reference.

use proptest::prelude::*;
use tuffy_mln::weight::Weight;
use tuffy_mrf::{ComponentSet, Lit, Mrf, MrfBuilder};
use tuffy_search::WalkSat;

/// A random MRF from a clause soup.
fn build_mrf(n_atoms: u32, clauses: &[(Vec<(u8, bool)>, i8)]) -> Mrf {
    let mut b = MrfBuilder::new();
    b.reserve_atoms(n_atoms as usize);
    for (lits, w) in clauses {
        let lits: Vec<Lit> = lits
            .iter()
            .map(|&(a, pos)| Lit::new(u32::from(a) % n_atoms, pos))
            .collect();
        let weight = match *w {
            0 => Weight::Hard,
            x => Weight::Soft(f64::from(x)),
        };
        b.add_clause(lits, weight);
    }
    b.finish()
}

proptest! {
    #[test]
    fn incremental_cost_equals_full_recompute(
        clauses in proptest::collection::vec(
            (proptest::collection::vec((0u8..10, any::<bool>()), 1..4), -3i8..4),
            1..25,
        ),
        steps in 1usize..120,
        seed in any::<u64>(),
    ) {
        let mrf = build_mrf(10, &clauses);
        let mut ws = WalkSat::new(&mrf, seed);
        for _ in 0..steps {
            if !ws.step(0.5) {
                break;
            }
            let full = mrf.cost(ws.truth());
            prop_assert_eq!(ws.cost(), full);
        }
        // The best cost is never worse than the current cost's history.
        prop_assert!(!ws.cost().better_than(ws.best_cost()) || ws.cost() == ws.best_cost());
        // And the recorded best assignment really has the recorded cost.
        prop_assert_eq!(mrf.cost(ws.best_truth()), ws.best_cost());
    }

    #[test]
    fn components_match_bfs(
        clauses in proptest::collection::vec(
            (proptest::collection::vec((0u8..12, any::<bool>()), 1..4), 1i8..3),
            0..20,
        ),
    ) {
        let mrf = build_mrf(12, &clauses);
        let cs = ComponentSet::detect(&mrf);
        // BFS reference over the atom-clause incidence graph.
        let n = mrf.num_atoms();
        let mut label = vec![usize::MAX; n];
        let mut next = 0usize;
        for start in 0..n as u32 {
            if label[start as usize] != usize::MAX {
                continue;
            }
            let mut queue = vec![start];
            label[start as usize] = next;
            while let Some(a) = queue.pop() {
                for &occ in mrf.occurrences(a) {
                    for l in mrf.clause_lits(occ.clause() as usize) {
                        let b = l.atom();
                        if label[b as usize] == usize::MAX {
                            label[b as usize] = next;
                            queue.push(b);
                        }
                    }
                }
            }
            next += 1;
        }
        prop_assert_eq!(cs.count(), next);
        for i in 0..n {
            for j in 0..n {
                prop_assert_eq!(
                    label[i] == label[j],
                    cs.label[i] == cs.label[j],
                    "atoms {} and {}", i, j
                );
            }
        }
    }

    #[test]
    fn flip_is_involutive_on_cost(
        clauses in proptest::collection::vec(
            (proptest::collection::vec((0u8..8, any::<bool>()), 1..4), -2i8..3),
            1..15,
        ),
        atom in 0u8..8,
        seed in any::<u64>(),
    ) {
        let mrf = build_mrf(8, &clauses);
        let mut ws = WalkSat::new(&mrf, seed);
        let before = ws.cost();
        ws.flip(u32::from(atom));
        ws.flip(u32::from(atom));
        prop_assert_eq!(ws.cost(), before);
    }

    /// `flip_delta(a)` (the CSR occurrence-arena scan) must equal the
    /// brute-force cost difference `cost(flipped) − cost(truth)` for
    /// every atom of a random MRF under a random assignment.
    #[test]
    fn flip_delta_matches_brute_force_cost_difference(
        clauses in proptest::collection::vec(
            (proptest::collection::vec((0u8..10, any::<bool>()), 1..5), -3i8..4),
            1..25,
        ),
        truth in proptest::collection::vec(any::<bool>(), 10..11),
        seed in any::<u64>(),
    ) {
        let mrf = build_mrf(10, &clauses);
        let base = mrf.cost(&truth);
        let ws = WalkSat::with_assignment(&mrf, truth.clone(), seed);
        for atom in 0..mrf.num_atoms() {
            let (dh, ds) = ws.flip_delta(atom as u32);
            let mut flipped = truth.clone();
            flipped[atom] = !flipped[atom];
            let after = mrf.cost(&flipped);
            prop_assert_eq!(
                dh,
                after.hard as i64 - base.hard as i64,
                "hard delta of atom {} drifted", atom
            );
            let expect_soft = after.soft - base.soft;
            prop_assert!(
                (ds - expect_soft).abs() < 1e-9,
                "soft delta of atom {}: {} vs brute-force {}", atom, ds, expect_soft
            );
        }
    }
}
