//! WalkSAT (Algorithm 1, Appendix A.4) with incremental bookkeeping.
//!
//! Each step samples a random *violated* clause and flips one of its atoms
//! — a random one with probability `noise`, otherwise the atom whose flip
//! decreases the world cost the most. Violation follows §2.2: a
//! positive-weight clause is violated when false, a negative-weight clause
//! when true; hard clauses dominate lexicographically.
//!
//! The implementation keeps per-clause true-literal counts, an O(1)-sample
//! set of violated clauses, and an incrementally maintained cost, so a
//! flip costs time proportional to the flipped atom's occurrence list —
//! the "flipping rate" the paper measures in Table 3.
//!
//! The flip loop is allocation-free and leans directly on the MRF's CSR
//! columns: each [`tuffy_mrf::Occurrence`] entry already carries the
//! flipped atom's sign in its clause (no literal-slice scan to recover
//! polarity), and the violation cost and polarity of every clause are
//! precomputed columns ([`Mrf::violation_cost`],
//! [`Mrf::clause_violated_when`]) rather than per-visit matches on the
//! weight enum.

use crate::timecost::TimeCostTrace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tuffy_mrf::{AtomId, Cost, Mrf};

/// Parameters of a WalkSAT run (Algorithm 1's `MaxFlips`/`MaxTries`, the
/// random-move probability, and the RNG seed).
#[derive(Clone, Copy, Debug)]
pub struct WalkSatParams {
    /// Flips per try.
    pub max_flips: u64,
    /// Number of random restarts.
    pub max_tries: u32,
    /// Probability of a random (non-greedy) move; the paper uses 0.5.
    pub noise: f64,
    /// RNG seed (runs are deterministic given a seed).
    pub seed: u64,
}

impl Default for WalkSatParams {
    fn default() -> Self {
        WalkSatParams {
            max_flips: 100_000,
            max_tries: 1,
            noise: 0.5,
            seed: 42,
        }
    }
}

/// A signed cost delta, ordered like [`Cost`] (hard first).
#[derive(Clone, Copy, Debug, PartialEq)]
struct Delta {
    hard: i64,
    soft: f64,
}

impl Delta {
    const ZERO: Delta = Delta { hard: 0, soft: 0.0 };

    fn less_than(self, other: Delta) -> bool {
        match self.hard.cmp(&other.hard) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => self.soft < other.soft,
        }
    }
}

/// Per-clause search state: the true-literal counter and the clause's
/// position in the violated-set member list (`u32::MAX` when not
/// violated), packed side by side so a flip-loop transition — which
/// always touches both — pays one random access instead of two.
#[derive(Clone, Copy, Debug)]
struct ClauseSlot {
    /// True literals under the current assignment.
    num_true: u32,
    /// Index into [`ViolatedSet::members`], or `u32::MAX`.
    pos: u32,
}

impl ClauseSlot {
    const EMPTY: ClauseSlot = ClauseSlot {
        num_true: 0,
        pos: u32::MAX,
    };
}

/// An O(1) insert/remove/sample set of violated-clause indices whose
/// per-clause position lives inside the shared [`ClauseSlot`] column.
#[derive(Clone, Debug, Default)]
struct ViolatedSet {
    members: Vec<u32>,
}

impl ViolatedSet {
    #[inline]
    fn insert(&mut self, slots: &mut [ClauseSlot], x: u32) {
        if slots[x as usize].pos == u32::MAX {
            slots[x as usize].pos = self.members.len() as u32;
            self.members.push(x);
        }
    }

    #[inline]
    fn remove(&mut self, slots: &mut [ClauseSlot], x: u32) {
        let p = slots[x as usize].pos;
        if p == u32::MAX {
            return;
        }
        let last = *self.members.last().unwrap();
        self.members[p as usize] = last;
        slots[last as usize].pos = p;
        self.members.pop();
        slots[x as usize].pos = u32::MAX;
    }

    /// Empties the set in O(|members|), keeping the allocation — the
    /// restart path ([`WalkSat::randomize`]) reuses the set instead of
    /// reallocating it.
    fn clear(&mut self, slots: &mut [ClauseSlot]) {
        for &x in &self.members {
            slots[x as usize].pos = u32::MAX;
        }
        self.members.clear();
    }

    #[inline]
    fn len(&self) -> usize {
        self.members.len()
    }

    #[inline]
    fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    #[inline]
    fn sample(&self, rng: &mut StdRng) -> u32 {
        self.members[rng.gen_range(0..self.members.len())]
    }
}

/// In-memory WalkSAT over one MRF.
///
/// The mutable per-clause search state (true-literal counter +
/// violated-set position) lives in one dense 8-byte `ClauseSlot`
/// column — the flip loop reads one slot per occurrence, and most
/// visits stop at the counter; the violation cost/polarity columns on
/// the [`Mrf`] are only touched when a clause actually crosses the
/// satisfied boundary.
pub struct WalkSat<'a> {
    mrf: &'a Mrf,
    truth: Vec<bool>,
    slots: Vec<ClauseSlot>,
    violated: ViolatedSet,
    cost: Cost,
    best_cost: Cost,
    best_truth: Vec<bool>,
    flips: u64,
    rng: StdRng,
}

impl<'a> WalkSat<'a> {
    /// Creates a solver with an all-false initial assignment (the
    /// LazySAT default state; see Appendix A.3).
    pub fn new(mrf: &'a Mrf, seed: u64) -> WalkSat<'a> {
        let truth = vec![false; mrf.num_atoms()];
        Self::with_assignment(mrf, truth, seed)
    }

    /// Runs the full WalkSAT loop warm-started from `init` — the
    /// session API's repeated-inference path, where the previous MAP
    /// state seeds the next search. Equivalent to
    /// [`WalkSat::with_assignment`] followed by [`WalkSat::run`];
    /// warm-starting from all-`false` is exactly a cold
    /// [`WalkSat::new`] run.
    pub fn run_from(
        mrf: &'a Mrf,
        init: Vec<bool>,
        params: &WalkSatParams,
        trace: Option<&mut TimeCostTrace>,
    ) -> WalkSat<'a> {
        let mut ws = WalkSat::with_assignment(mrf, init, params.seed);
        ws.run(params, trace);
        ws
    }

    /// Creates a solver starting from a given assignment.
    pub fn with_assignment(mrf: &'a Mrf, truth: Vec<bool>, seed: u64) -> WalkSat<'a> {
        assert_eq!(truth.len(), mrf.num_atoms());
        let mut ws = WalkSat {
            mrf,
            truth,
            slots: vec![ClauseSlot::EMPTY; mrf.num_clauses()],
            violated: ViolatedSet::default(),
            cost: Cost::ZERO,
            best_cost: Cost::ZERO,
            best_truth: Vec::new(),
            flips: 0,
            rng: StdRng::seed_from_u64(seed),
        };
        ws.recompute();
        ws.best_cost = ws.cost;
        ws.best_truth = ws.truth.clone();
        ws
    }

    /// Rebuilds counters and cost from the current assignment (reusing
    /// the violated-set allocation across restarts).
    fn recompute(&mut self) {
        self.cost = self.mrf.base_cost;
        self.violated.clear(&mut self.slots);
        for ci in 0..self.mrf.num_clauses() {
            let nt = self.mrf.clause(ci).true_count(&self.truth) as u32;
            self.slots[ci].num_true = nt;
            if self.mrf.clause_violated_when(ci, nt > 0) {
                self.violated.insert(&mut self.slots, ci as u32);
                self.cost = self.cost.add(self.mrf.violation_cost(ci));
            }
        }
    }

    /// Randomizes the assignment (a WalkSAT "try").
    pub fn randomize(&mut self) {
        for t in &mut self.truth {
            *t = self.rng.gen();
        }
        self.recompute();
        if self.cost.better_than(self.best_cost) || self.best_truth.is_empty() {
            self.best_cost = self.cost;
            self.best_truth = self.truth.clone();
        }
    }

    /// Current cost.
    pub fn cost(&self) -> Cost {
        self.cost
    }

    /// Best cost seen so far.
    pub fn best_cost(&self) -> Cost {
        self.best_cost
    }

    /// Best assignment seen so far.
    pub fn best_truth(&self) -> &[bool] {
        &self.best_truth
    }

    /// Current assignment.
    pub fn truth(&self) -> &[bool] {
        &self.truth
    }

    /// Flips performed so far.
    pub fn flips(&self) -> u64 {
        self.flips
    }

    /// Number of currently violated clauses.
    pub fn violated_count(&self) -> usize {
        self.violated.len()
    }

    /// The cost change that flipping `atom` would cause, as a
    /// `(hard, soft)` pair (used by SampleSAT's annealing moves).
    pub fn flip_delta(&self, atom: AtomId) -> (i64, f64) {
        let d = self.delta(atom);
        (d.hard, d.soft)
    }

    /// The cost change that flipping `atom` would cause.
    ///
    /// Each occurrence entry carries the literal's sign, and the
    /// violation polarity and cost are precomputed columns, so the scan
    /// is one counter load + two bit tests per clause — no literal list,
    /// no weight enum.
    fn delta(&self, atom: AtomId) -> Delta {
        let mut d = Delta::ZERO;
        let value = self.truth[atom as usize];
        for &occ in self.mrf.occurrences(atom) {
            let ci = occ.clause() as usize;
            let was_true = value == occ.is_positive();
            let nt = self.slots[ci].num_true;
            let nt_after = if was_true { nt - 1 } else { nt + 1 };
            // Branchless accumulation: whether the clause crosses the
            // satisfied boundary (and in which violation direction) folds
            // into a {-1, 0, +1} factor instead of a data-dependent
            // branch — the crossing pattern is effectively random, and a
            // mispredict costs more than the two spare L1 column loads.
            // The `×0` multiply on the soft term is NaN-safe because the
            // violation column is finite by construction
            // (`MrfBuilder::finish` normalizes non-finite soft weights
            // to hard).
            let crossed = (nt > 0) != (nt_after > 0);
            let became_violated = self.mrf.clause_violated_when(ci, nt_after > 0);
            let sign = i64::from(crossed) * if became_violated { 1 } else { -1 };
            let w = self.mrf.violation_cost(ci);
            d.hard += sign * w.hard as i64;
            d.soft += sign as f64 * w.soft;
        }
        d
    }

    /// Flips `atom`, updating all bookkeeping.
    pub fn flip(&mut self, atom: AtomId) {
        let new_value = !self.truth[atom as usize];
        self.truth[atom as usize] = new_value;
        self.flips += 1;
        for &occ in self.mrf.occurrences(atom) {
            let ci = occ.clause() as usize;
            let now_true = new_value == occ.is_positive();
            let nt = self.slots[ci].num_true;
            let nt_after = if now_true { nt + 1 } else { nt - 1 };
            self.slots[ci].num_true = nt_after;
            if (nt > 0) == (nt_after > 0) {
                continue; // satisfaction unchanged ⇒ violation unchanged
            }
            let w = self.mrf.violation_cost(ci);
            if self.mrf.clause_violated_when(ci, nt_after > 0) {
                self.cost = self.cost.add(w);
                self.violated.insert(&mut self.slots, ci as u32);
            } else {
                self.cost.hard -= w.hard;
                self.cost.soft -= w.soft;
                self.violated.remove(&mut self.slots, ci as u32);
            }
        }
        if self.cost.better_than(self.best_cost) {
            self.best_cost = self.cost;
            self.best_truth.copy_from_slice_checked(&self.truth);
        }
    }

    /// One WalkSAT step (Algorithm 1, lines 5–10). Returns `false` when no
    /// clause is violated (a zero-cost optimum — nothing left to do).
    pub fn step(&mut self, noise: f64) -> bool {
        if self.violated.is_empty() {
            return false;
        }
        let ci = self.violated.sample(&mut self.rng);
        let lits = self.mrf.clause_lits(ci as usize);
        let atom = if self.rng.gen::<f64>() <= noise {
            lits[self.rng.gen_range(0..lits.len())].atom()
        } else if lits.len() == 1 {
            // A unit clause has no alternatives to score; skipping the
            // delta scan consumes no randomness, so trajectories are
            // unchanged.
            lits[0].atom()
        } else {
            // Greedy: the atom whose flip decreases cost the most.
            let mut best_atom = lits[0].atom();
            let mut best_delta = self.delta(best_atom);
            for l in &lits[1..] {
                let d = self.delta(l.atom());
                if d.less_than(best_delta) {
                    best_delta = d;
                    best_atom = l.atom();
                }
            }
            best_atom
        };
        self.flip(atom);
        true
    }

    /// Runs the full WalkSAT loop, recording the best-cost curve in
    /// `trace` (if provided) every improvement and every 4096 flips.
    pub fn run(&mut self, params: &WalkSatParams, mut trace: Option<&mut TimeCostTrace>) {
        for try_idx in 0..params.max_tries.max(1) {
            if try_idx > 0 {
                self.randomize();
            }
            if let Some(t) = trace.as_mut() {
                t.record(self.flips, self.best_cost);
            }
            let mut last_best = self.best_cost;
            for i in 0..params.max_flips {
                if !self.step(params.noise) {
                    break; // zero-cost world found
                }
                if let Some(t) = trace.as_mut() {
                    if self.best_cost.better_than(last_best) || i % 4096 == 4095 {
                        t.record(self.flips, self.best_cost);
                        last_best = self.best_cost;
                    }
                }
            }
            if self.best_cost.is_zero() {
                break;
            }
        }
        if let Some(t) = trace.as_mut() {
            t.record(self.flips, self.best_cost);
        }
    }
}

/// Extension: length-checked copy (avoids realloc in the hot path).
trait CopyChecked {
    fn copy_from_slice_checked(&mut self, src: &[bool]);
}

impl CopyChecked for Vec<bool> {
    #[inline]
    fn copy_from_slice_checked(&mut self, src: &[bool]) {
        if self.len() == src.len() {
            self.copy_from_slice(src);
        } else {
            self.clear();
            self.extend_from_slice(src);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tuffy_mln::weight::Weight;
    use tuffy_mrf::{Lit, MrfBuilder};

    /// Example 1 of the paper with N components.
    pub(crate) fn example1(n: u32) -> Mrf {
        let mut b = MrfBuilder::new();
        for i in 0..n {
            let (x, y) = (2 * i, 2 * i + 1);
            b.add_clause(vec![Lit::pos(x)], Weight::Soft(1.0));
            b.add_clause(vec![Lit::pos(y)], Weight::Soft(1.0));
            b.add_clause(vec![Lit::pos(x), Lit::pos(y)], Weight::Soft(-1.0));
        }
        b.finish()
    }

    #[test]
    fn finds_optimum_of_example1_single_component() {
        let m = example1(1);
        let mut ws = WalkSat::new(&m, 7);
        ws.run(
            &WalkSatParams {
                max_flips: 1000,
                ..Default::default()
            },
            None,
        );
        // Optimum is X=Y=true with cost 1 (the negative clause violated).
        assert_eq!(ws.best_cost(), Cost::soft(1.0));
        assert_eq!(ws.best_truth(), &[true, true]);
    }

    #[test]
    fn incremental_cost_matches_full_recompute() {
        let m = example1(5);
        let mut ws = WalkSat::new(&m, 11);
        for _ in 0..500 {
            ws.step(0.5);
            let full = m.cost(ws.truth());
            assert_eq!(ws.cost(), full, "incremental cost drifted");
        }
    }

    #[test]
    fn hard_clauses_dominate() {
        // Hard: a must be true. Soft weight 100: a false.
        let mut b = MrfBuilder::new();
        b.add_clause(vec![Lit::pos(0)], Weight::Hard);
        b.add_clause(vec![Lit::neg(0)], Weight::Soft(100.0));
        let m = b.finish();
        let mut ws = WalkSat::new(&m, 3);
        ws.run(
            &WalkSatParams {
                max_flips: 200,
                ..Default::default()
            },
            None,
        );
        assert_eq!(ws.best_cost().hard, 0);
        assert!(ws.best_truth()[0]);
    }

    #[test]
    fn stops_at_zero_cost() {
        let mut b = MrfBuilder::new();
        b.add_clause(vec![Lit::pos(0), Lit::pos(1)], Weight::Soft(1.0));
        let m = b.finish();
        let mut ws = WalkSat::new(&m, 5);
        ws.run(
            &WalkSatParams {
                max_flips: 10_000,
                ..Default::default()
            },
            None,
        );
        assert!(ws.best_cost().is_zero());
        assert!(
            ws.flips() < 10_000,
            "should stop early at a zero-cost world"
        );
    }

    #[test]
    fn negative_weight_clause_avoided() {
        // Single clause (a ∨ b) with weight -2: optimum sets both false.
        let mut b = MrfBuilder::new();
        b.add_clause(vec![Lit::pos(0), Lit::pos(1)], Weight::Soft(-2.0));
        let m = b.finish();
        let mut ws = WalkSat::with_assignment(&m, vec![true, true], 9);
        ws.run(
            &WalkSatParams {
                max_flips: 1000,
                ..Default::default()
            },
            None,
        );
        assert!(ws.best_cost().is_zero());
        assert_eq!(ws.best_truth(), &[false, false]);
    }

    #[test]
    fn trace_records_improvements() {
        let m = example1(3);
        let mut ws = WalkSat::new(&m, 1);
        let mut trace = TimeCostTrace::new();
        ws.run(
            &WalkSatParams {
                max_flips: 2000,
                ..Default::default()
            },
            Some(&mut trace),
        );
        assert!(!trace.points().is_empty());
        // The recorded best-cost curve is monotonically non-increasing.
        for w in trace.points().windows(2) {
            assert!(
                w[1].cost.cmp_total(w[0].cost).is_le(),
                "best-cost curve increased: {} -> {}",
                w[0].cost,
                w[1].cost
            );
        }
    }

    #[test]
    fn run_from_all_false_matches_cold_run() {
        let m = example1(4);
        let params = WalkSatParams {
            max_flips: 500,
            ..Default::default()
        };
        let mut cold = WalkSat::new(&m, params.seed);
        cold.run(&params, None);
        let warm = WalkSat::run_from(&m, vec![false; m.num_atoms()], &params, None);
        assert_eq!(cold.best_truth(), warm.best_truth());
        assert_eq!(cold.flips(), warm.flips());
        assert_eq!(cold.best_cost(), warm.best_cost());
    }

    #[test]
    fn run_from_optimum_stays_at_optimum() {
        // Warm-starting from the known optimum of example1 means no
        // violated positive clause remains except the −1 bridges; the
        // best cost can only stay equal-or-better than the seed state.
        let m = example1(3);
        let optimum = vec![true; m.num_atoms()];
        let seed_cost = m.cost(&optimum);
        let ws = WalkSat::run_from(
            &m,
            optimum,
            &WalkSatParams {
                max_flips: 2_000,
                ..Default::default()
            },
            None,
        );
        assert!(!seed_cost.better_than(ws.best_cost()));
    }

    #[test]
    fn deterministic_given_seed() {
        let m = example1(4);
        let run = |seed| {
            let mut ws = WalkSat::new(&m, seed);
            ws.run(
                &WalkSatParams {
                    max_flips: 300,
                    max_tries: 2,
                    ..Default::default()
                },
                None,
            );
            (ws.best_cost(), ws.best_truth().to_vec(), ws.flips())
        };
        assert_eq!(run(123), run(123));
    }
}
