//! `Tuffy-mm`: WalkSAT executed against the RDBMS (Appendix B.2).
//!
//! The paper's all-RDBMS variant keeps the clause table on disk and only
//! the atom truth values in memory: "Atoms are cached as in-memory arrays,
//! while the per-clause data structures are read-only. Each step of
//! WalkSAT involves a scan over the clauses and many random accesses to
//! the atoms." We reproduce exactly that access pattern: the packed
//! literal table lives in the engine behind a bounded buffer pool; every
//! step scans it once to find a random violated clause (reservoir
//! sampling), and greedy steps scan once more to score the candidate
//! atoms. The buffer pool's miss counters × the configured [`DiskModel`]
//! give a simulated elapsed time, which is how the 3–5
//! orders-of-magnitude flipping-rate gap of Table 3 is reproduced
//! deterministically on any hardware (Appendix C.1 bounds any disk-backed
//! implementation at ≈100 flips/sec for 10 ms random I/O).

use crate::timecost::TimeCostTrace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};
use tuffy_mln::weight::Weight;
use tuffy_mrf::{AtomId, Cost, Lit, Mrf};
use tuffy_rdbms::exec::Batch;
use tuffy_rdbms::query::{ColumnBinding, ConjunctiveQuery, QueryAtom};
use tuffy_rdbms::{
    execute_into, plan_analyzed, Database, DiskModel, OptimizerConfig, QueryPlan, TableSchema,
};

/// WalkSAT over an RDBMS-resident clause table.
pub struct RdbmsSearch {
    db: Database,
    weights: Vec<Weight>,
    /// Physical plan of the clause-table scan (`SELECT cid, lit FROM
    /// clause_lits`), planned once at load time and executed on every
    /// WalkSAT step — render it with [`RdbmsSearch::explain_scan`].
    scan_plan: QueryPlan,
    /// Reused materialization buffer for the per-step scans (the I/O is
    /// re-charged on every scan; only the allocation is reused).
    scan_buf: Batch,
    truth: Vec<bool>,
    best_truth: Vec<bool>,
    best_cost: Cost,
    base_cost: Cost,
    flips: u64,
    rng: StdRng,
}

/// Outcome statistics of an RDBMS-backed run.
#[derive(Clone, Debug)]
pub struct RdbmsSearchResult {
    /// Best assignment found.
    pub truth: Vec<bool>,
    /// Its cost.
    pub cost: Cost,
    /// Flips performed.
    pub flips: u64,
    /// Pure CPU wall time.
    pub wall: Duration,
    /// Simulated I/O time from buffer-pool misses × disk model.
    pub simulated_io: Duration,
    /// Effective flips/second including simulated I/O — the Table 3 rate.
    pub flips_per_sec: f64,
}

impl RdbmsSearch {
    /// Loads `mrf`'s clause table into a database whose buffer pool holds
    /// `pool_pages` pages under the given disk model.
    pub fn new(mrf: &Mrf, pool_pages: usize, disk: DiskModel, seed: u64) -> RdbmsSearch {
        let mut db = Database::new(pool_pages, disk);
        let lits_table = db
            .create_table("clause_lits", TableSchema::new(vec!["cid", "lit"]))
            .expect("fresh database");
        let mut weights = Vec::with_capacity(mrf.clauses().len());
        for (ci, c) in mrf.clauses().iter().enumerate() {
            weights.push(c.weight);
            for l in c.lits.iter() {
                db.insert(lits_table, &[ci as u32, l.raw()]).unwrap();
            }
        }
        let scan_query = ConjunctiveQuery {
            atoms: vec![QueryAtom {
                table: lits_table,
                bindings: vec![ColumnBinding::Var(0), ColumnBinding::Var(1)],
            }],
            anti_atoms: vec![],
            neq: vec![],
            neq_const: vec![],
            ranges: vec![],
            output: vec![0, 1],
            distinct: false,
        };
        let scan_plan = plan_analyzed(&mut db, &scan_query, &OptimizerConfig::default())
            .expect("clause-table scan query is well-formed");
        let truth = vec![false; mrf.num_atoms()];
        let mut s = RdbmsSearch {
            db,
            weights,
            scan_plan,
            scan_buf: Batch::default(),
            best_truth: truth.clone(),
            truth,
            best_cost: Cost::ZERO,
            base_cost: mrf.base_cost,
            flips: 0,
            rng: StdRng::seed_from_u64(seed),
        };
        s.best_cost = s.scan_cost();
        s
    }

    /// Executes the planned clause-table scan into the reused buffer and
    /// hands it out (charging I/O to the buffer pool, which is where the
    /// simulated disk time comes from). Callers return the batch with
    /// [`RdbmsSearch::return_scan`] so its allocation is recycled.
    fn take_scan(&mut self) -> Batch {
        let mut buf = std::mem::take(&mut self.scan_buf);
        execute_into(&self.db, &self.scan_plan, &mut buf).expect("clause-table scan executes");
        buf
    }

    /// Returns a batch obtained from [`RdbmsSearch::take_scan`] for reuse.
    fn return_scan(&mut self, buf: Batch) {
        self.scan_buf = buf;
    }

    /// The physical plan of the per-step clause-table scan.
    pub fn scan_plan(&self) -> &QueryPlan {
        &self.scan_plan
    }

    /// `EXPLAIN` rendering of the per-step clause-table scan.
    pub fn explain_scan(&self) -> String {
        self.scan_plan.explain()
    }

    /// Current cost by a full clause-table scan.
    fn scan_cost(&mut self) -> Cost {
        let batch = self.take_scan();
        let mut cost = self.base_cost;
        let mut current_cid = u32::MAX;
        let mut any_true = false;
        let flush = |cid: u32, any_true: bool, cost: &mut Cost| {
            if cid != u32::MAX && self.weights[cid as usize].violated_when(any_true) {
                *cost = cost.add(Cost::of_violation(self.weights[cid as usize]));
            }
        };
        for row in batch.iter() {
            let (cid, lit) = (row[0], Lit::from_raw(row[1]));
            if cid != current_cid {
                flush(current_cid, any_true, &mut cost);
                current_cid = cid;
                any_true = false;
            }
            any_true |= lit.eval(self.truth[lit.atom() as usize]);
        }
        flush(current_cid, any_true, &mut cost);
        self.return_scan(batch);
        cost
    }

    /// One WalkSAT step: scan to pick a random violated clause, then flip
    /// a random atom (probability `noise`) or the greedily best atom
    /// (one more scan to score candidates).
    pub fn step(&mut self, noise: f64) -> bool {
        // Scan 1: reservoir-sample a violated clause, collecting its lits.
        let mut chosen: Option<u32> = None;
        let mut chosen_lits: Vec<Lit> = Vec::new();
        let mut violated_seen = 0u32;
        {
            let batch = self.take_scan();
            let mut current = u32::MAX;
            let mut any_true = false;
            let mut lits_buf: Vec<Lit> = Vec::new();
            let mut finish =
                |cid: u32, any_true: bool, lits: &Vec<Lit>, rng: &mut StdRng| -> bool {
                    if cid != u32::MAX && self.weights[cid as usize].violated_when(any_true) {
                        violated_seen += 1;
                        if rng.gen_range(0..violated_seen) == 0 {
                            chosen = Some(cid);
                            chosen_lits = lits.clone();
                        }
                    }
                    false
                };
            for row in batch.iter() {
                let (cid, lit) = (row[0], Lit::from_raw(row[1]));
                if cid != current {
                    finish(current, any_true, &lits_buf, &mut self.rng);
                    current = cid;
                    any_true = false;
                    lits_buf.clear();
                }
                lits_buf.push(lit);
                any_true |= lit.eval(self.truth[lit.atom() as usize]);
            }
            finish(current, any_true, &lits_buf, &mut self.rng);
            self.return_scan(batch);
        }
        let Some(_cid) = chosen else {
            return false; // zero violated clauses: optimum
        };

        let atom = if self.rng.gen::<f64>() <= noise {
            chosen_lits[self.rng.gen_range(0..chosen_lits.len())].atom()
        } else {
            self.greedy_atom(&chosen_lits)
        };
        self.truth[atom as usize] = !self.truth[atom as usize];
        self.flips += 1;
        // Track the best state; cost via scan (already paid by the next
        // step's scan in Tuffy-mm, so we fold it in here explicitly).
        let cost = self.scan_cost();
        if cost.better_than(self.best_cost) {
            self.best_cost = cost;
            self.best_truth.copy_from_slice(&self.truth);
        }
        true
    }

    /// Scan 2: score each candidate atom of the chosen clause by the cost
    /// delta its flip would cause, accumulating over the clause table.
    fn greedy_atom(&mut self, candidates: &[Lit]) -> AtomId {
        let batch = self.take_scan();
        let atoms: Vec<AtomId> = candidates.iter().map(|l| l.atom()).collect();
        let mut delta_hard = vec![0i64; atoms.len()];
        let mut delta_soft = vec![0f64; atoms.len()];
        let mut current = u32::MAX;
        let mut n_true = 0u32;
        let mut touched: Vec<(usize, bool)> = Vec::new(); // (candidate idx, lit was true)
        let flush = |cid: u32,
                     n_true: u32,
                     touched: &Vec<(usize, bool)>,
                     dh: &mut Vec<i64>,
                     ds: &mut Vec<f64>| {
            if cid == u32::MAX || touched.is_empty() {
                return;
            }
            let w = self.weights[cid as usize];
            let before = w.violated_when(n_true > 0);
            for &(ci, was_true) in touched {
                let after_n = if was_true { n_true - 1 } else { n_true + 1 };
                let after = w.violated_when(after_n > 0);
                if before != after {
                    let c = Cost::of_violation(w);
                    let sign = if after { 1.0 } else { -1.0 };
                    dh[ci] += if after {
                        c.hard as i64
                    } else {
                        -(c.hard as i64)
                    };
                    ds[ci] += sign * c.soft;
                }
            }
        };
        for row in batch.iter() {
            let (cid, lit) = (row[0], Lit::from_raw(row[1]));
            if cid != current {
                flush(current, n_true, &touched, &mut delta_hard, &mut delta_soft);
                current = cid;
                n_true = 0;
                touched.clear();
            }
            let is_true = lit.eval(self.truth[lit.atom() as usize]);
            n_true += u32::from(is_true);
            if let Some(pos) = atoms.iter().position(|&a| a == lit.atom()) {
                touched.push((pos, is_true));
            }
        }
        flush(current, n_true, &touched, &mut delta_hard, &mut delta_soft);
        self.return_scan(batch);
        let mut best = 0usize;
        for i in 1..atoms.len() {
            let better = (delta_hard[i], delta_soft[i]) < (delta_hard[best], delta_soft[best]);
            if better {
                best = i;
            }
        }
        atoms[best]
    }

    /// Runs up to `max_flips` steps or until `deadline` of combined
    /// wall + simulated-I/O time elapses. Returns the run statistics.
    pub fn run(
        &mut self,
        max_flips: u64,
        noise: f64,
        deadline: Option<Duration>,
        mut trace: Option<&mut TimeCostTrace>,
    ) -> RdbmsSearchResult {
        let start = Instant::now();
        let io_start = self.db.simulated_io_nanos();
        for _ in 0..max_flips {
            if !self.step(noise) {
                break;
            }
            let sim = Duration::from_nanos((self.db.simulated_io_nanos() - io_start) as u64);
            let elapsed = start.elapsed() + sim;
            if let Some(t) = trace.as_deref_mut() {
                t.record_at(elapsed, self.flips, self.best_cost);
            }
            if deadline.is_some_and(|d| elapsed >= d) {
                break;
            }
        }
        let wall = start.elapsed();
        let simulated_io = Duration::from_nanos((self.db.simulated_io_nanos() - io_start) as u64);
        let total = (wall + simulated_io).as_secs_f64();
        RdbmsSearchResult {
            truth: self.best_truth.clone(),
            cost: self.best_cost,
            flips: self.flips,
            wall,
            simulated_io,
            flips_per_sec: if total > 0.0 {
                self.flips as f64 / total
            } else {
                f64::INFINITY
            },
        }
    }

    /// Flips performed so far.
    pub fn flips(&self) -> u64 {
        self.flips
    }

    /// Best cost so far.
    pub fn best_cost(&self) -> Cost {
        self.best_cost
    }

    /// I/O counters of the underlying database.
    pub fn io_stats(&self) -> tuffy_rdbms::IoStats {
        self.db.io_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tuffy_mrf::MrfBuilder;

    fn example1(n: u32) -> Mrf {
        let mut b = MrfBuilder::new();
        for i in 0..n {
            let (x, y) = (2 * i, 2 * i + 1);
            b.add_clause(vec![Lit::pos(x)], Weight::Soft(1.0));
            b.add_clause(vec![Lit::pos(y)], Weight::Soft(1.0));
            b.add_clause(vec![Lit::pos(x), Lit::pos(y)], Weight::Soft(-1.0));
        }
        b.finish()
    }

    #[test]
    fn finds_same_optimum_as_memory_walksat() {
        let m = example1(2);
        let mut s = RdbmsSearch::new(&m, 1024, DiskModel::in_memory(), 7);
        let r = s.run(2000, 0.5, None, None);
        assert_eq!(r.cost, Cost::soft(2.0)); // both components at optimum
    }

    #[test]
    fn io_charged_per_step() {
        let m = example1(8);
        let mut s = RdbmsSearch::new(&m, 0, DiskModel::in_memory(), 3);
        let before = s.io_stats().page_reads;
        s.step(0.5);
        let after = s.io_stats().page_reads;
        assert!(after > before, "steps must touch the clause table");
    }

    #[test]
    fn simulated_disk_slows_flip_rate() {
        let m = example1(8);
        // Tiny pool + SSD latency: rate should collapse vs in-memory.
        let mut slow = RdbmsSearch::new(&m, 0, DiskModel::ssd(), 3);
        let r_slow = slow.run(50, 0.5, None, None);
        let mut fast = RdbmsSearch::new(&m, usize::MAX / 2, DiskModel::in_memory(), 3);
        let r_fast = fast.run(50, 0.5, None, None);
        assert!(r_slow.simulated_io > Duration::ZERO);
        assert!(r_fast.simulated_io == Duration::ZERO);
        assert!(r_slow.flips_per_sec < r_fast.flips_per_sec);
    }

    #[test]
    fn cost_scan_matches_mrf_cost() {
        let m = example1(5);
        let mut s = RdbmsSearch::new(&m, 64, DiskModel::in_memory(), 1);
        assert_eq!(s.scan_cost(), m.cost(&vec![false; m.num_atoms()]));
    }
}
