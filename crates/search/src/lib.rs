//! # tuffy-search — stochastic local search over ground MRFs
//!
//! The search half of Tuffy's MAP inference (paper §2.3, §3.2–3.4):
//!
//! * [`walksat`] — the WalkSAT algorithm (Appendix A.4, Algorithm 1) with
//!   incremental cost bookkeeping, an O(1)-sample violated-clause set,
//!   negative-weight and hard-clause handling, and flip-rate
//!   instrumentation (Table 3);
//! * [`scheduler`] — the partition-aware inference scheduler unifying
//!   §3.3 and §3.4: connected components (or Algorithm 3 partitions when
//!   a memory budget bounds β), First-Fit-Decreasing bin packing of
//!   partitions into budget-sized batches, a work-stealing worker pool
//!   running WalkSAT (MAP) or MC-SAT (marginals) per partition with
//!   deterministic per-partition seeds, and Gauss-Seidel rounds across
//!   cut clauses (the scheme of Bertsekas and Tsitsiklis, the paper's
//!   reference \[3\]) with an early-convergence criterion;
//! * [`rdbms_search`] — `Tuffy-mm`: WalkSAT executed against the clause
//!   table in the RDBMS through its buffer pool (Appendix B.2), whose
//!   measured flipping rate reproduces the 3–5 orders-of-magnitude gap of
//!   Table 3;
//! * [`mcsat`] — marginal inference by MC-SAT with a SampleSAT proposal
//!   (Appendix A.5);
//! * [`timecost`] — time-cost trace recording for the paper's figures.

pub mod mcsat;
pub mod rdbms_search;
pub mod scheduler;
pub mod timecost;
pub mod walksat;

pub use mcsat::McSat;
pub use scheduler::{
    MarginalSamples, Schedule, ScheduleResult, ScheduleUnit, Scheduler, SchedulerConfig,
};
pub use timecost::{TimeCostTrace, TracePoint};
pub use walksat::{WalkSat, WalkSatParams};
