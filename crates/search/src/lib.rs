//! # tuffy-search — stochastic local search over ground MRFs
//!
//! The search half of Tuffy's MAP inference (paper §2.3, §3.2–3.4):
//!
//! * [`walksat`] — the WalkSAT algorithm (Appendix A.4, Algorithm 1) with
//!   incremental cost bookkeeping, an O(1)-sample violated-clause set,
//!   negative-weight and hard-clause handling, and flip-rate
//!   instrumentation (Table 3);
//! * [`component`] — component-aware WalkSAT (§3.3): solve each connected
//!   component independently with weighted round-robin step budgets and
//!   per-component best-state tracking, the source of the exponential
//!   speedup of Theorem 3.1;
//! * [`gauss_seidel`] — partition-aware search (§3.4): iterate WalkSAT
//!   over partitions, conditioning each pass's cut clauses on the frozen
//!   state of the other partitions (the Gauss-Seidel scheme of Bertsekas
//!   and Tsitsiklis, the paper's reference \[3\]);
//! * [`parallel`] — multi-threaded execution of per-component searches
//!   over FFD-packed batches with round-robin scheduling (§3.3);
//! * [`rdbms_search`] — `Tuffy-mm`: WalkSAT executed against the clause
//!   table in the RDBMS through its buffer pool (Appendix B.2), whose
//!   measured flipping rate reproduces the 3–5 orders-of-magnitude gap of
//!   Table 3;
//! * [`mcsat`] — marginal inference by MC-SAT with a SampleSAT proposal
//!   (Appendix A.5);
//! * [`timecost`] — time-cost trace recording for the paper's figures.

pub mod component;
pub mod gauss_seidel;
pub mod mcsat;
pub mod parallel;
pub mod rdbms_search;
pub mod timecost;
pub mod walksat;

pub use component::ComponentSearch;
pub use gauss_seidel::GaussSeidel;
pub use mcsat::McSat;
pub use timecost::{TimeCostTrace, TracePoint};
pub use walksat::{WalkSat, WalkSatParams};
