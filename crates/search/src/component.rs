//! Component-aware WalkSAT (§3.3).
//!
//! The cost of a world decomposes over connected components, so Tuffy runs
//! WalkSAT on each component independently, keeping the lowest-cost state
//! *per component* — Theorem 3.1 shows this is exponentially faster in
//! expectation than monolithic WalkSAT, because the monolithic walk keeps
//! breaking already-optimal components while trying to fix the rest.
//! Flip budgets follow the paper's §4.4 protocol: component `G_i` receives
//! `total · |G_i| / |G|` flips (weighted round-robin).

use crate::timecost::TimeCostTrace;
use crate::walksat::{WalkSat, WalkSatParams};
use tuffy_mrf::{ComponentSet, Cost, Mrf};

/// Component-aware search over an MRF.
pub struct ComponentSearch<'a> {
    mrf: &'a Mrf,
    components: &'a ComponentSet,
}

/// The merged result of per-component searches.
#[derive(Clone, Debug)]
pub struct ComponentSearchResult {
    /// Global assignment assembled from per-component bests.
    pub truth: Vec<bool>,
    /// Total cost (base + per-component bests).
    pub cost: Cost,
    /// Total flips spent.
    pub flips: u64,
    /// Peak in-memory footprint: the largest single component's search
    /// state (components are loaded one at a time).
    pub peak_component_bytes: usize,
}

impl<'a> ComponentSearch<'a> {
    /// Creates a component-aware searcher.
    pub fn new(mrf: &'a Mrf, components: &'a ComponentSet) -> Self {
        ComponentSearch { mrf, components }
    }

    /// Runs WalkSAT on every component with weighted round-robin budgets.
    ///
    /// The trace records the *global* best-so-far cost: the sum of solved
    /// components' best costs plus the not-yet-searched components' initial
    /// (all-false) costs.
    pub fn run(
        &self,
        params: &WalkSatParams,
        mut trace: Option<&mut TimeCostTrace>,
    ) -> ComponentSearchResult {
        let total_atoms = self.mrf.num_atoms().max(1);
        let mut truth = vec![false; self.mrf.num_atoms()];
        let mut flips = 0u64;
        let mut peak = 0usize;

        // Initial global cost with the all-false default state.
        let mut global_cost = self.mrf.cost(&truth);
        if let Some(t) = trace.as_mut() {
            t.record(0, global_cost);
        }

        for i in 0..self.components.count() {
            if self.components.clauses[i].is_empty() {
                continue;
            }
            let atoms = &self.components.atoms[i];
            let (sub, _origin) = self.mrf.project(atoms);
            peak = peak.max(tuffy_mrf::memory::MemoryFootprint::of(&sub).total());
            let budget = (params.max_flips * atoms.len() as u64 / total_atoms as u64).max(1);
            let mut ws = WalkSat::new(&sub, params.seed.wrapping_add(i as u64));
            let mut last_best = ws.best_cost();
            for step in 0..budget {
                if !ws.step(params.noise) {
                    break;
                }
                if ws.best_cost().better_than(last_best) {
                    // Fold the improvement into the global curve.
                    let improved = global_cost;
                    let improved = Cost {
                        hard: improved.hard - (last_best.hard - ws.best_cost().hard),
                        soft: improved.soft - (last_best.soft - ws.best_cost().soft),
                    };
                    global_cost = improved;
                    last_best = ws.best_cost();
                    if let Some(t) = trace.as_mut() {
                        t.record(flips + step + 1, global_cost);
                    }
                }
            }
            flips += ws.flips();
            // Write the component's best state into the global assignment.
            for (local, &global) in atoms.iter().enumerate() {
                truth[global as usize] = ws.best_truth()[local];
            }
        }

        let cost = self.mrf.cost(&truth);
        if let Some(t) = trace.as_mut() {
            t.record(flips, cost);
        }
        ComponentSearchResult {
            truth,
            cost,
            flips,
            peak_component_bytes: peak,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tuffy_mln::weight::Weight;
    use tuffy_mrf::{Lit, MrfBuilder};

    /// Example 1 of the paper with N components.
    fn example1(n: u32) -> Mrf {
        let mut b = MrfBuilder::new();
        for i in 0..n {
            let (x, y) = (2 * i, 2 * i + 1);
            b.add_clause(vec![Lit::pos(x)], Weight::Soft(1.0));
            b.add_clause(vec![Lit::pos(y)], Weight::Soft(1.0));
            b.add_clause(vec![Lit::pos(x), Lit::pos(y)], Weight::Soft(-1.0));
        }
        b.finish()
    }

    #[test]
    fn solves_every_component_of_example1() {
        let m = example1(50);
        let cs = ComponentSet::detect(&m);
        assert_eq!(cs.nontrivial_count(), 50);
        let search = ComponentSearch::new(&m, &cs);
        let result = search.run(
            &WalkSatParams {
                max_flips: 50 * 100,
                seed: 3,
                ..Default::default()
            },
            None,
        );
        // Global optimum: every component at X=Y=true, cost 1 each.
        assert_eq!(result.cost, Cost::soft(50.0));
        assert!(result.truth.iter().all(|&t| t));
    }

    #[test]
    fn beats_monolithic_walksat_on_equal_budget() {
        // Theorem 3.1's phenomenon: with the same total flips, the
        // component-aware search reaches the global optimum while the
        // monolithic one lags (check-and-balance breaks optima).
        let n = 100u32;
        let m = example1(n);
        let budget = 60 * n as u64;
        let cs = ComponentSet::detect(&m);
        let comp = ComponentSearch::new(&m, &cs)
            .run(
                &WalkSatParams {
                    max_flips: budget,
                    seed: 17,
                    ..Default::default()
                },
                None,
            )
            .cost;
        let mut mono = WalkSat::new(&m, 17);
        mono.run(
            &WalkSatParams {
                max_flips: budget,
                seed: 17,
                ..Default::default()
            },
            None,
        );
        assert_eq!(comp, Cost::soft(n as f64));
        assert!(
            mono.best_cost().soft > comp.soft,
            "monolithic {} should trail component-aware {}",
            mono.best_cost(),
            comp
        );
    }

    #[test]
    fn trace_is_globally_consistent() {
        let m = example1(10);
        let cs = ComponentSet::detect(&m);
        let mut trace = TimeCostTrace::new();
        let result = ComponentSearch::new(&m, &cs).run(
            &WalkSatParams {
                max_flips: 4000,
                seed: 5,
                ..Default::default()
            },
            Some(&mut trace),
        );
        let last = trace.final_cost().unwrap();
        assert_eq!(last, result.cost);
        // First sample is the all-false initial cost: 2 per component.
        assert_eq!(trace.points()[0].cost, Cost::soft(20.0));
    }
}
