//! Partition-aware search by Gauss-Seidel iteration (§3.4).
//!
//! When a single component exceeds the memory budget, Tuffy splits it with
//! the greedy partitioner (Algorithm 3) and searches partitions one at a
//! time: WalkSAT runs on partition `i` *conditioned* on the current states
//! of all other partitions — cut clauses with an externally satisfied
//! literal drop out for the pass, other cut clauses lose their external
//! literals — and the sweep repeats for `T` rounds. This is the
//! Gauss-Seidel method from nonlinear optimization [Bertsekas &
//! Tsitsiklis], replacing Example 2's exhaustive boundary enumeration
//! (cutset conditioning) which is infeasible for real cut sizes.

use crate::timecost::TimeCostTrace;
use crate::walksat::{WalkSat, WalkSatParams};
use tuffy_mln::fxhash::FxHashMap;
use tuffy_mrf::{AtomId, Cost, Lit, Mrf, MrfBuilder, Partitioning};

/// Gauss-Seidel partition-aware search.
pub struct GaussSeidel<'a> {
    mrf: &'a Mrf,
    parts: &'a Partitioning,
    /// Cut clauses touching each partition (precomputed).
    cut_by_part: Vec<Vec<u32>>,
}

/// Result of a Gauss-Seidel run.
#[derive(Clone, Debug)]
pub struct GaussSeidelResult {
    /// Best global assignment found.
    pub truth: Vec<bool>,
    /// Its cost.
    pub cost: Cost,
    /// Total flips spent.
    pub flips: u64,
    /// Peak single-partition search footprint in bytes — the quantity the
    /// memory budget of Figure 6 constrains.
    pub peak_partition_bytes: usize,
}

impl<'a> GaussSeidel<'a> {
    /// Prepares a searcher for a partitioned MRF.
    pub fn new(mrf: &'a Mrf, parts: &'a Partitioning) -> Self {
        let mut cut_by_part = vec![Vec::new(); parts.count()];
        for &ci in &parts.cut_clauses {
            let clause = &mrf.clauses()[ci as usize];
            let mut seen: Vec<u32> = Vec::new();
            for l in clause.lits.iter() {
                let p = parts.label[l.atom() as usize];
                if !seen.contains(&p) {
                    seen.push(p);
                    cut_by_part[p as usize].push(ci);
                }
            }
        }
        GaussSeidel {
            mrf,
            parts,
            cut_by_part,
        }
    }

    /// Runs `rounds` Gauss-Seidel sweeps, each giving every partition a
    /// WalkSAT pass of `params.max_flips / (rounds · #partitions)` flips.
    pub fn run(
        &self,
        rounds: usize,
        params: &WalkSatParams,
        mut trace: Option<&mut TimeCostTrace>,
    ) -> GaussSeidelResult {
        let mut truth = vec![false; self.mrf.num_atoms()];
        let mut best_truth = truth.clone();
        let mut best_cost = self.mrf.cost(&truth);
        let mut flips = 0u64;
        let mut peak = 0usize;
        if let Some(t) = trace.as_mut() {
            t.record(0, best_cost);
        }
        let active_parts = (0..self.parts.count())
            .filter(|&i| {
                !self.parts.internal_clauses[i].is_empty() || !self.cut_by_part[i].is_empty()
            })
            .collect::<Vec<_>>();
        if active_parts.is_empty() {
            return GaussSeidelResult {
                truth,
                cost: best_cost,
                flips: 0,
                peak_partition_bytes: 0,
            };
        }
        let per_pass =
            (params.max_flips / (rounds.max(1) as u64 * active_parts.len() as u64)).max(1);

        for round in 0..rounds.max(1) {
            for (pi_idx, &pi) in active_parts.iter().enumerate() {
                let atoms = &self.parts.atoms[pi];
                let (sub, init) = self.condition_partition(pi, atoms, &truth);
                peak = peak.max(tuffy_mrf::memory::MemoryFootprint::of(&sub).total());
                let seed = params
                    .seed
                    .wrapping_add((round * active_parts.len() + pi_idx) as u64);
                let mut ws = WalkSat::with_assignment(&sub, init, seed);
                for _ in 0..per_pass {
                    if !ws.step(params.noise) {
                        break;
                    }
                }
                flips += ws.flips();
                for (local, &global) in atoms.iter().enumerate() {
                    truth[global as usize] = ws.best_truth()[local];
                }
                let cost = self.mrf.cost(&truth);
                if cost.better_than(best_cost) {
                    best_cost = cost;
                    best_truth.copy_from_slice(&truth);
                    if let Some(t) = trace.as_mut() {
                        t.record(flips, best_cost);
                    }
                }
            }
        }
        if let Some(t) = trace.as_mut() {
            t.record(flips, best_cost);
        }
        GaussSeidelResult {
            truth: best_truth,
            cost: best_cost,
            flips,
            peak_partition_bytes: peak,
        }
    }

    /// Builds the sub-MRF of partition `pi` conditioned on the rest of the
    /// current global assignment, plus the partition's initial state.
    fn condition_partition(
        &self,
        pi: usize,
        atoms: &[AtomId],
        global: &[bool],
    ) -> (Mrf, Vec<bool>) {
        let mut dense: FxHashMap<AtomId, AtomId> = FxHashMap::default();
        for (i, &a) in atoms.iter().enumerate() {
            dense.insert(a, i as AtomId);
        }
        let mut b = MrfBuilder::new();
        b.reserve_atoms(atoms.len());
        for &ci in &self.parts.internal_clauses[pi] {
            let c = &self.mrf.clauses()[ci as usize];
            let lits: Vec<Lit> = c
                .lits
                .iter()
                .map(|l| Lit::new(dense[&l.atom()], l.is_positive()))
                .collect();
            b.add_clause(lits, c.weight);
        }
        for &ci in &self.cut_by_part[pi] {
            let c = &self.mrf.clauses()[ci as usize];
            let mut lits = Vec::new();
            let mut satisfied_externally = false;
            for l in c.lits.iter() {
                match dense.get(&l.atom()) {
                    Some(&local) => lits.push(Lit::new(local, l.is_positive())),
                    None => {
                        if l.eval(global[l.atom() as usize]) {
                            satisfied_externally = true;
                            break;
                        }
                        // Externally false literal: drop it.
                    }
                }
            }
            if satisfied_externally {
                continue; // fixed for this pass
            }
            b.add_clause(lits, c.weight);
        }
        let sub = b.finish();
        let init: Vec<bool> = atoms.iter().map(|&a| global[a as usize]).collect();
        (sub, init)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tuffy_mln::weight::Weight;
    use tuffy_mrf::MrfBuilder;

    /// Example 2 of the paper: two dense subgraphs joined by one edge.
    /// Each subgraph is a 3-atom "all equal" cluster (pairwise ⇔ clauses
    /// with positive weight, encoded as two implications); the bridge
    /// clause prefers a0 ≠ b0.
    fn example2() -> Mrf {
        let mut b = MrfBuilder::new();
        let cluster = |b: &mut MrfBuilder, base: u32| {
            for i in 0..3u32 {
                for j in (i + 1)..3 {
                    b.add_clause(
                        vec![Lit::neg(base + i), Lit::pos(base + j)],
                        Weight::Soft(2.0),
                    );
                    b.add_clause(
                        vec![Lit::pos(base + i), Lit::neg(base + j)],
                        Weight::Soft(2.0),
                    );
                }
            }
            // Bias each cluster toward true.
            for i in 0..3u32 {
                b.add_clause(vec![Lit::pos(base + i)], Weight::Soft(0.5));
            }
        };
        cluster(&mut b, 0);
        cluster(&mut b, 3);
        // Bridge: ¬a0 ∨ b0 (weight 1) — satisfied at the all-true optimum,
        // and distinct from the unit bias clauses so it never merges away.
        b.add_clause(vec![Lit::neg(0), Lit::pos(3)], Weight::Soft(1.0));
        b.finish()
    }

    #[test]
    fn reaches_optimum_across_partitions() {
        let m = example2();
        // Split into the two clusters: β sized so each cluster (3 atoms +
        // 12 internal clause literals + 3 unit literals = 3+15) fits.
        let parts = Partitioning::compute(&m, 21);
        assert!(parts.count() >= 2);
        let gs = GaussSeidel::new(&m, &parts);
        let result = gs.run(
            4,
            &WalkSatParams {
                max_flips: 8000,
                seed: 9,
                ..Default::default()
            },
            None,
        );
        // Global optimum: everything true, zero cost.
        assert!(result.cost.is_zero(), "cost = {}", result.cost);
        assert!(result.truth.iter().all(|&t| t));
    }

    #[test]
    fn conditioning_respects_external_state() {
        let m = example2();
        let parts = Partitioning::compute(&m, 21);
        let gs = GaussSeidel::new(&m, &parts);
        // With the bridge clause ¬a0 ∨ b0: if the external side satisfies
        // it, the conditioned sub-MRF drops the clause.
        let pi = parts.label[0] as usize;
        let mut global = vec![false; m.num_atoms()];
        global[3] = true; // external literal true
        let (sub_sat, _) = gs.condition_partition(pi, &parts.atoms[pi], &global);
        let global_unsat = vec![false; m.num_atoms()];
        let (sub_unsat, _) = gs.condition_partition(pi, &parts.atoms[pi], &global_unsat);
        assert_eq!(sub_sat.clauses().len() + 1, sub_unsat.clauses().len());
    }

    #[test]
    fn single_partition_degenerates_to_walksat() {
        let m = example2();
        let parts = Partitioning::compute(&m, usize::MAX);
        assert_eq!(parts.count(), 1);
        let gs = GaussSeidel::new(&m, &parts);
        let result = gs.run(
            1,
            &WalkSatParams {
                max_flips: 8000,
                seed: 2,
                ..Default::default()
            },
            None,
        );
        assert!(result.cost.is_zero());
    }
}
