//! Parallel per-component search (§3.3).
//!
//! Once the MRF is split into components and the components are grouped
//! into memory-budget batches (First Fit Decreasing), the per-component
//! searches are embarrassingly parallel. Tuffy uses round-robin
//! scheduling over worker threads; we implement the same with a shared
//! work queue over scoped threads (workers pull the next component as
//! they finish — round-robin when components are uniform, load-balanced
//! when they are not). The paper reports ~6× end-to-end speedup with 8
//! threads (Table 7, Appendix C.3).

use crate::walksat::{WalkSat, WalkSatParams};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use tuffy_mrf::{ComponentSet, Cost, Mrf};

/// Result of a parallel component search.
#[derive(Clone, Debug)]
pub struct ParallelResult {
    /// Merged global assignment.
    pub truth: Vec<bool>,
    /// Its cost.
    pub cost: Cost,
    /// Total flips across all workers.
    pub flips: u64,
    /// Worker threads used.
    pub threads: usize,
}

/// Searches all components with `threads` workers pulling from a shared
/// queue. Deterministic per component (seeds derive from component index),
/// regardless of which worker runs it.
pub fn solve_components_parallel(
    mrf: &Mrf,
    components: &ComponentSet,
    params: &WalkSatParams,
    threads: usize,
) -> ParallelResult {
    let threads = threads.max(1);
    let total_atoms = mrf.num_atoms().max(1);
    let jobs: Vec<usize> = (0..components.count())
        .filter(|&i| !components.clauses[i].is_empty())
        .collect();
    let next = AtomicUsize::new(0);
    let flips = AtomicU64::new(0);
    // Per-component results, merged after the scope joins.
    let results: Vec<parking_lot::Mutex<Option<Vec<bool>>>> = (0..components.count())
        .map(|_| parking_lot::Mutex::new(None))
        .collect();

    crossbeam::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let j = next.fetch_add(1, Ordering::Relaxed);
                if j >= jobs.len() {
                    break;
                }
                let comp = jobs[j];
                let atoms = &components.atoms[comp];
                let (sub, _) = mrf.project(atoms);
                let budget = (params.max_flips * atoms.len() as u64 / total_atoms as u64).max(1);
                let mut ws = WalkSat::new(&sub, params.seed.wrapping_add(comp as u64));
                for _ in 0..budget {
                    if !ws.step(params.noise) {
                        break;
                    }
                }
                flips.fetch_add(ws.flips(), Ordering::Relaxed);
                *results[comp].lock() = Some(ws.best_truth().to_vec());
            });
        }
    })
    .expect("worker panicked");

    let mut truth = vec![false; mrf.num_atoms()];
    for (comp, slot) in results.iter().enumerate() {
        if let Some(local) = slot.lock().take() {
            for (li, &a) in components.atoms[comp].iter().enumerate() {
                truth[a as usize] = local[li];
            }
        }
    }
    let cost = mrf.cost(&truth);
    ParallelResult {
        truth,
        cost,
        flips: flips.into_inner(),
        threads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tuffy_mln::weight::Weight;
    use tuffy_mrf::{Lit, MrfBuilder};

    fn example1(n: u32) -> Mrf {
        let mut b = MrfBuilder::new();
        for i in 0..n {
            let (x, y) = (2 * i, 2 * i + 1);
            b.add_clause(vec![Lit::pos(x)], Weight::Soft(1.0));
            b.add_clause(vec![Lit::pos(y)], Weight::Soft(1.0));
            b.add_clause(vec![Lit::pos(x), Lit::pos(y)], Weight::Soft(-1.0));
        }
        b.finish()
    }

    #[test]
    fn parallel_matches_sequential_quality() {
        let m = example1(64);
        let cs = ComponentSet::detect(&m);
        let params = WalkSatParams {
            max_flips: 64 * 100,
            seed: 21,
            ..Default::default()
        };
        let par = solve_components_parallel(&m, &cs, &params, 4);
        assert_eq!(par.cost, Cost::soft(64.0)); // global optimum
        assert!(par.truth.iter().all(|&t| t));
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let m = example1(16);
        let cs = ComponentSet::detect(&m);
        let params = WalkSatParams {
            max_flips: 16 * 200,
            seed: 4,
            ..Default::default()
        };
        let a = solve_components_parallel(&m, &cs, &params, 1);
        let b = solve_components_parallel(&m, &cs, &params, 8);
        // Component seeds depend only on the component index, so the
        // merged assignment is identical for any thread count.
        assert_eq!(a.truth, b.truth);
        assert_eq!(a.cost, b.cost);
    }

    #[test]
    fn single_thread_is_allowed() {
        let m = example1(4);
        let cs = ComponentSet::detect(&m);
        let r = solve_components_parallel(&m, &cs, &WalkSatParams::default(), 0);
        assert_eq!(r.threads, 1);
        assert_eq!(r.cost, Cost::soft(4.0));
    }
}
