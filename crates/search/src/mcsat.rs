//! Marginal inference: MC-SAT with a SampleSAT proposal (Appendix A.5).
//!
//! MC-SAT (Poon & Domingos) is a slice sampler: at each iteration it
//! selects a random subset `M` of the clauses satisfied by the current
//! state — each soft clause with probability `1 − e^{−w}`, hard clauses
//! always — and samples a near-uniform satisfying assignment of `M` using
//! SampleSAT, a mixture of WalkSAT moves and simulated-annealing moves
//! ("Essentially, SampleSAT is a combination of simulated annealing and
//! WalkSAT", Appendix A.5). Atom marginals are the fraction of samples in
//! which the atom is true.
//!
//! Negative-weight clauses are not supported by the slice construction
//! and are rejected up front (the paper's marginal appendix likewise
//! assumes non-negative clause weights).

use crate::walksat::WalkSat;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tuffy_mln::weight::Weight;
use tuffy_mln::MlnError;
#[cfg(test)]
use tuffy_mrf::Lit;
use tuffy_mrf::{GroundClause, Mrf, MrfBuilder};

/// MC-SAT parameters.
#[derive(Clone, Copy, Debug)]
pub struct McSatParams {
    /// Number of MC-SAT samples (after burn-in).
    pub samples: usize,
    /// Burn-in samples discarded up front.
    pub burn_in: usize,
    /// SampleSAT steps per sample.
    pub sample_sat_steps: u64,
    /// Probability of an annealing move (vs a WalkSAT move) in SampleSAT.
    pub p_anneal: f64,
    /// Annealing temperature (in units of violated-clause count).
    pub temperature: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for McSatParams {
    fn default() -> Self {
        McSatParams {
            samples: 200,
            burn_in: 20,
            sample_sat_steps: 2_000,
            p_anneal: 0.5,
            temperature: 0.5,
            seed: 42,
        }
    }
}

/// MC-SAT marginal-inference engine over one MRF.
pub struct McSat<'a> {
    mrf: &'a Mrf,
    rng: StdRng,
    flips: u64,
}

impl<'a> McSat<'a> {
    /// Creates the sampler. Errors if the MRF has negative-weight clauses.
    pub fn new(mrf: &'a Mrf, seed: u64) -> Result<McSat<'a>, MlnError> {
        for c in mrf.clauses() {
            if c.weight.signum() < 0 {
                return Err(MlnError::general(
                    "MC-SAT marginal inference requires non-negative clause weights",
                ));
            }
        }
        Ok(McSat {
            mrf,
            rng: StdRng::seed_from_u64(seed),
            flips: 0,
        })
    }

    /// Total WalkSAT/SampleSAT flips performed so far (initialization
    /// plus every SampleSAT pass) — the marginal analogue of the MAP
    /// report's flip count.
    pub fn flips(&self) -> u64 {
        self.flips
    }

    /// Runs MC-SAT and returns the per-atom marginal probabilities.
    pub fn marginals(&mut self, params: &McSatParams) -> Vec<f64> {
        self.marginals_with_clause_stats(params).0
    }

    /// [`McSat::marginals`] that additionally returns, per clause, the
    /// fraction of post-burn-in samples in which the clause was
    /// satisfied — the `E[nᵢ]` sufficient statistic weight learning
    /// reads. The extra counting consumes no randomness, so the atom
    /// marginals are bit-identical to a plain [`McSat::marginals`] run
    /// with the same seed.
    pub fn marginals_with_clause_stats(&mut self, params: &McSatParams) -> (Vec<f64>, Vec<f64>) {
        let n = self.mrf.num_atoms();
        let mut counts = vec![0u64; n];
        let mut sat_counts = vec![0u64; self.mrf.num_clauses()];
        // Initial state: satisfy the hard clauses with WalkSAT.
        let mut state = {
            let mut ws = WalkSat::new(self.mrf, self.rng.gen());
            ws.run(
                &crate::walksat::WalkSatParams {
                    max_flips: params.sample_sat_steps * 4,
                    max_tries: 3,
                    noise: 0.5,
                    seed: self.rng.gen(),
                },
                None,
            );
            self.flips += ws.flips();
            ws.best_truth().to_vec()
        };

        for it in 0..params.burn_in + params.samples {
            let selected = self.select_clauses(&state);
            state = self.sample_sat(&selected, state, params);
            if it >= params.burn_in {
                for (a, &t) in state.iter().enumerate() {
                    counts[a] += u64::from(t);
                }
                for (ci, c) in self.mrf.clauses().iter().enumerate() {
                    sat_counts[ci] += u64::from(c.satisfied(&state));
                }
            }
        }
        let probs = counts
            .into_iter()
            .map(|c| c as f64 / params.samples as f64)
            .collect();
        let clause_sat = sat_counts
            .into_iter()
            .map(|c| c as f64 / params.samples as f64)
            .collect();
        (probs, clause_sat)
    }

    /// The MC-SAT slice: every satisfied hard clause, plus each satisfied
    /// soft clause with probability `1 − e^{−w}`.
    fn select_clauses(&mut self, state: &[bool]) -> Vec<GroundClause> {
        let mut out = Vec::new();
        for c in self.mrf.clauses() {
            if !c.satisfied(state) {
                continue;
            }
            let take = match c.weight {
                Weight::Hard => true,
                Weight::Soft(w) => self.rng.gen::<f64>() < 1.0 - (-w).exp(),
                Weight::NegHard => false, // rejected in `new`
            };
            if take {
                out.push(c.to_ground());
            }
        }
        out
    }

    /// SampleSAT: sample a near-uniform satisfying assignment of the
    /// selected clauses, starting from a random state.
    fn sample_sat(
        &mut self,
        selected: &[GroundClause],
        fallback: Vec<bool>,
        params: &McSatParams,
    ) -> Vec<bool> {
        let n = self.mrf.num_atoms();
        if n == 0 {
            // An empty MRF has exactly one (empty) world; there is
            // nothing to sample and `gen_range(0..0)` below would panic.
            return fallback;
        }
        // Build a hard-constraint MRF over the selected clauses.
        let mut b = MrfBuilder::new();
        b.reserve_atoms(n);
        for c in selected {
            b.add_clause(c.lits.to_vec(), Weight::Hard);
        }
        let hard = b.finish();
        let mut init = vec![false; n];
        for t in &mut init {
            *t = self.rng.gen();
        }
        let mut ws = WalkSat::with_assignment(&hard, init, self.rng.gen());
        for _ in 0..params.sample_sat_steps {
            if ws.cost().is_zero() {
                // Keep moving at zero cost to decorrelate (annealing moves
                // that keep cost zero).
                let atom = self.rng.gen_range(0..n) as u32;
                let (dh, _) = ws.flip_delta(atom);
                if dh <= 0 {
                    ws.flip(atom);
                }
                continue;
            }
            if self.rng.gen::<f64>() < params.p_anneal {
                // Simulated-annealing move on the violated-clause count.
                let atom = self.rng.gen_range(0..n) as u32;
                let (dh, _) = ws.flip_delta(atom);
                if dh <= 0 || self.rng.gen::<f64>() < (-(dh as f64) / params.temperature).exp() {
                    ws.flip(atom);
                }
            } else {
                ws.step(0.5);
            }
        }
        self.flips += ws.flips();
        if ws.cost().is_zero() {
            ws.truth().to_vec()
        } else if ws.best_cost().is_zero() {
            ws.best_truth().to_vec()
        } else {
            // SampleSAT failed to satisfy M within budget: keep the
            // previous state (standard practical fallback).
            fallback
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A single positive unit clause (a, w): P(a) = e^w / (1 + e^w).
    #[test]
    fn unit_clause_marginal_matches_analytic() {
        let w = 1.0f64;
        let mut b = MrfBuilder::new();
        b.add_clause(vec![Lit::pos(0)], Weight::Soft(w));
        let m = b.finish();
        let mut mc = McSat::new(&m, 7).unwrap();
        let marg = mc.marginals(&McSatParams {
            samples: 2000,
            burn_in: 50,
            sample_sat_steps: 20,
            ..Default::default()
        });
        let expected = w.exp() / (1.0 + w.exp()); // ≈ 0.731
        assert!(
            (marg[0] - expected).abs() < 0.06,
            "marginal {} vs analytic {}",
            marg[0],
            expected
        );
    }

    /// Two atoms tied by a hard equivalence, one biased: they co-vary.
    #[test]
    fn hard_equivalence_ties_marginals() {
        let mut b = MrfBuilder::new();
        b.add_clause(vec![Lit::neg(0), Lit::pos(1)], Weight::Hard);
        b.add_clause(vec![Lit::pos(0), Lit::neg(1)], Weight::Hard);
        b.add_clause(vec![Lit::pos(0)], Weight::Soft(1.5));
        let m = b.finish();
        let mut mc = McSat::new(&m, 13).unwrap();
        let marg = mc.marginals(&McSatParams {
            samples: 1500,
            burn_in: 50,
            sample_sat_steps: 60,
            ..Default::default()
        });
        assert!(
            (marg[0] - marg[1]).abs() < 0.05,
            "{} vs {}",
            marg[0],
            marg[1]
        );
        assert!(marg[0] > 0.6, "biased atom should lean true: {}", marg[0]);
    }

    #[test]
    fn negative_weights_rejected() {
        let mut b = MrfBuilder::new();
        b.add_clause(vec![Lit::pos(0)], Weight::Soft(-1.0));
        let m = b.finish();
        assert!(McSat::new(&m, 1).is_err());
    }

    #[test]
    fn uniform_over_satisfying_assignments_when_unconstrained() {
        // No clauses at all: marginals ≈ 0.5.
        let mut b = MrfBuilder::new();
        b.reserve_atoms(2);
        let m = b.finish();
        let mut mc = McSat::new(&m, 3).unwrap();
        let marg = mc.marginals(&McSatParams {
            samples: 2000,
            burn_in: 10,
            sample_sat_steps: 10,
            ..Default::default()
        });
        for p in marg {
            assert!((p - 0.5).abs() < 0.06, "unconstrained marginal {p}");
        }
    }
}
