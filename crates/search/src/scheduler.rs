//! Partition-aware parallel inference scheduling (§3.3–3.4, Appendix B.7).
//!
//! This module unifies the three decomposition mechanisms of the paper —
//! connected components (§3.3), memory-budgeted MRF partitioning
//! (Algorithm 3, §3.4), and multi-threaded per-partition search
//! (Appendix C.3) — into one subsystem:
//!
//! 1. **Plan** ([`Schedule::plan`]): run Algorithm 3 under a β bound
//!    derived from the byte budget (β = ∞, i.e. exact connected
//!    components, when no budget is given), estimate every partition's
//!    search-state footprint analytically, and First-Fit-Decreasing pack
//!    the partitions into memory-budgeted bins.
//! 2. **Execute** ([`Scheduler::run`]): sweep the bins with a
//!    work-stealing worker pool. Within a bin every partition is searched
//!    against the assignment *snapshotted at the bin's start* (block
//!    Jacobi), while later bins — and later Gauss-Seidel rounds — see all
//!    earlier updates (Gauss-Seidel). Cut clauses are conditioned on the
//!    snapshot exactly as §3.4 describes: externally satisfied cut
//!    clauses drop out for the pass, the rest lose their external
//!    literals.
//! 3. **Converge**: rounds stop early once a full sweep leaves the
//!    assignment unchanged.
//!
//! Determinism: a partition pass depends only on the snapshot, the
//! partition id, and the round — its RNG seed is derived from those alone
//! — and merging happens in schedule order after each bin joins, so the
//! result (assignment, cost, flip counts, and the recorded best-cost
//! trajectory) is bit-identical for every worker-pool size.

use crate::mcsat::{McSat, McSatParams};
use crate::timecost::TimeCostTrace;
use crate::walksat::{WalkSat, WalkSatParams};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use tuffy_mln::fxhash::FxHashMap;
use tuffy_mln::MlnError;
use tuffy_mrf::binpack::{first_fit_decreasing, Bin};
use tuffy_mrf::memory::{beta_for_budget, human_bytes, MemoryFootprint};
use tuffy_mrf::{AtomId, Cost, Lit, Mrf, MrfBuilder, Partitioning};

/// Configuration of a [`Scheduler`].
#[derive(Clone, Copy, Debug)]
pub struct SchedulerConfig {
    /// Worker threads in the pool (0 and 1 both mean sequential).
    pub threads: usize,
    /// Byte budget for a resident bin; `None` schedules exact connected
    /// components in a single bin.
    pub mem_budget: Option<usize>,
    /// Maximum Gauss-Seidel rounds over cut clauses (ignored — one round
    /// — when the schedule has no cut clauses).
    pub rounds: usize,
    /// Per-partition WalkSAT parameters; `max_flips` is the *total* flip
    /// budget, divided across partitions and rounds in proportion to
    /// partition size (the §4.4 weighted round-robin protocol).
    pub search: WalkSatParams,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            threads: 1,
            mem_budget: None,
            rounds: 3,
            search: WalkSatParams::default(),
        }
    }
}

/// One schedulable unit: a partition with at least one (internal or cut)
/// clause.
#[derive(Clone, Debug)]
pub struct ScheduleUnit {
    /// Index of the partition in the [`Partitioning`].
    pub part: usize,
    /// Atoms in the partition.
    pub atom_count: usize,
    /// Clauses fully inside the partition.
    pub internal_clauses: usize,
    /// Cut clauses touching the partition.
    pub cut_clauses: usize,
    /// Estimated bytes of the partition's search state (internal clauses
    /// only; conditioned cut-clause remnants add a little on top).
    pub est_bytes: usize,
}

/// The planned decomposition: partitions, their footprints, and the
/// memory-budgeted bins they load in.
#[derive(Clone, Debug)]
pub struct Schedule {
    /// The Algorithm 3 partitioning (exact connected components when no
    /// budget bounds β).
    pub parts: Partitioning,
    /// Active partitions in partition order.
    pub units: Vec<ScheduleUnit>,
    /// FFD bins over `units` (items index into `units`).
    pub bins: Vec<Bin>,
    /// Cut clauses touching each partition (indexed by partition id).
    pub cut_by_part: Vec<Vec<u32>>,
    /// The byte budget the schedule was planned under.
    pub mem_budget: Option<usize>,
    /// Violated hard cut clauses would each cost ∞; their count.
    pub cut_hard: u64,
    /// Total |w| of soft cut clauses — the worst-case cost gap between
    /// partitioned and exact search (Appendix B.8's tradeoff quantity).
    pub cut_soft: f64,
}

impl Schedule {
    /// Plans the decomposition of `mrf` under `mem_budget` bytes.
    pub fn plan(mrf: &Mrf, mem_budget: Option<usize>) -> Schedule {
        let beta = mem_budget.map_or(usize::MAX, beta_for_budget);
        let parts = Partitioning::compute(mrf, beta);
        let mut cut_by_part = vec![Vec::new(); parts.count()];
        for &ci in &parts.cut_clauses {
            let clause = mrf.clause(ci as usize);
            let mut seen: Vec<u32> = Vec::new();
            for l in clause.lits.iter() {
                let p = parts.label[l.atom() as usize];
                if !seen.contains(&p) {
                    seen.push(p);
                    cut_by_part[p as usize].push(ci);
                }
            }
        }
        let mut units = Vec::new();
        for (p, internal) in parts.internal_clauses.iter().enumerate() {
            if internal.is_empty() && cut_by_part[p].is_empty() {
                continue; // atoms no clause touches play no role in search
            }
            let lits: usize = internal
                .iter()
                .map(|&ci| mrf.clause_lits(ci as usize).len())
                .sum();
            units.push(ScheduleUnit {
                part: p,
                atom_count: parts.atoms[p].len(),
                internal_clauses: internal.len(),
                cut_clauses: cut_by_part[p].len(),
                est_bytes: MemoryFootprint::estimate(parts.atoms[p].len(), internal.len(), lits)
                    .total(),
            });
        }
        let sizes: Vec<u64> = units.iter().map(|u| u.est_bytes as u64).collect();
        let capacity = mem_budget.map_or(u64::MAX, |b| (b as u64).max(1));
        let bins = first_fit_decreasing(&sizes, capacity);
        let (cut_hard, cut_soft) = parts.cut_weight(mrf);
        Schedule {
            parts,
            units,
            bins,
            cut_by_part,
            mem_budget,
            cut_hard,
            cut_soft,
        }
    }

    /// β the partitioning ran under (`usize::MAX` without a budget).
    pub fn beta(&self) -> usize {
        self.parts.beta
    }
}

/// Result of one scheduled inference run.
#[derive(Clone, Debug)]
pub struct ScheduleResult {
    /// Best global assignment found.
    pub truth: Vec<bool>,
    /// Its cost.
    pub cost: Cost,
    /// Total flips across all partition passes.
    pub flips: u64,
    /// Peak single-partition search footprint in bytes — the quantity the
    /// memory budget of Figure 6 constrains.
    pub peak_partition_bytes: usize,
    /// Gauss-Seidel rounds actually executed.
    pub rounds_run: usize,
    /// Whether a full round left the assignment unchanged (always `false`
    /// when the round limit was exhausted first).
    pub converged: bool,
    /// Worker threads used.
    pub threads: usize,
    /// Per-partition best-cost traces, aligned with
    /// [`Schedule::units`]. Flips are cumulative across rounds; elapsed
    /// time restarts at each pass.
    pub unit_traces: Vec<TimeCostTrace>,
}

/// The outcome of scheduled marginal inference: per-atom probabilities
/// plus the total SampleSAT work performed.
#[derive(Clone, Debug)]
pub struct MarginalSamples {
    /// `P(atom = true)` per atom id (0.5 for atoms outside every
    /// partition).
    pub probs: Vec<f64>,
    /// `P(clause satisfied)` per global clause id, under the same
    /// conditioned sampling that produced `probs` — the `E[nᵢ]`
    /// sufficient statistic weight learning reads. Cut clauses satisfied
    /// externally at the conditioning state count 1.0; a cut clause
    /// sampled by several partitions keeps the estimate of the first
    /// partition in schedule order (deterministic for any thread count).
    pub clause_sat: Vec<f64>,
    /// Total WalkSAT/SampleSAT flips across all samplers (and the MAP
    /// conditioning run, when cut clauses require one).
    pub flips: u64,
}

/// One partition pass's outcome, merged after its bin joins.
struct UnitOutcome {
    truth: Vec<bool>,
    flips: u64,
    bytes: usize,
    trace: TimeCostTrace,
}

/// Partition-aware parallel inference over one MRF.
pub struct Scheduler<'a> {
    mrf: &'a Mrf,
    schedule: Arc<Schedule>,
    config: SchedulerConfig,
}

impl<'a> Scheduler<'a> {
    /// Plans a schedule for `mrf` under the given configuration.
    pub fn new(mrf: &'a Mrf, config: SchedulerConfig) -> Scheduler<'a> {
        let schedule = Arc::new(Schedule::plan(mrf, config.mem_budget));
        Scheduler::with_schedule(mrf, schedule, config)
    }

    /// Wraps an already-planned schedule — the serving API's cached-plan
    /// path, where repeated queries over an unchanged grounded generation
    /// should not re-run partitioning and bin packing. Shared by `Arc`:
    /// any number of concurrent queries over one generation can hold the
    /// same plan without cloning it. The schedule must have been planned
    /// for this `mrf` under this configuration's budget.
    pub fn with_schedule(
        mrf: &'a Mrf,
        schedule: Arc<Schedule>,
        config: SchedulerConfig,
    ) -> Scheduler<'a> {
        Scheduler {
            mrf,
            schedule,
            config,
        }
    }

    /// Consumes the scheduler, handing its schedule back for reuse.
    pub fn into_schedule(self) -> Arc<Schedule> {
        self.schedule
    }

    /// The planned decomposition.
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// Effective Gauss-Seidel rounds: 1 when nothing is cut (a second
    /// sweep could not change anything), the configured limit otherwise.
    pub fn rounds(&self) -> usize {
        if self.schedule.parts.cut_clauses.is_empty() {
            1
        } else {
            self.config.rounds.max(1)
        }
    }

    /// Renders the planning decisions — partition sizes, bin packing, cut
    /// weight — in the same tree style as the RDBMS `EXPLAIN` report.
    pub fn explain(&self) -> String {
        let s = &self.schedule;
        let budget = match s.mem_budget {
            Some(b) => format!("budget {}", human_bytes(b)),
            None => "no memory budget".to_string(),
        };
        let beta = if s.beta() == usize::MAX {
            "β=∞".to_string()
        } else {
            format!("β={}", s.beta())
        };
        let mut out = format!(
            "Schedule: {} partitions in {} bins ({beta}, {budget}, threads={}, rounds={})\n",
            s.units.len(),
            s.bins.len(),
            self.config.threads.max(1),
            self.rounds(),
        );
        let cut = if s.parts.cut_clauses.is_empty() {
            "├─ cut: none (partitions are exact connected components)\n".to_string()
        } else {
            format!(
                "├─ cut: {} clauses (hard {}, soft |w| {:.1})\n",
                s.parts.cut_clauses.len(),
                s.cut_hard,
                s.cut_soft
            )
        };
        out.push_str(&cut);
        for (bi, bin) in s.bins.iter().enumerate() {
            let last_bin = bi + 1 == s.bins.len();
            let (branch, stem) = if last_bin {
                ("└─", "   ")
            } else {
                ("├─", "│  ")
            };
            out.push_str(&format!(
                "{branch} Bin {bi}  est {}{}\n",
                human_bytes(bin.total as usize),
                if s.mem_budget.is_some_and(|b| bin.total as usize > b) {
                    " (over budget: single oversized partition)"
                } else {
                    ""
                }
            ));
            for (ji, &ui) in bin.items.iter().enumerate() {
                let u = &s.units[ui];
                let twig = if ji + 1 == bin.items.len() {
                    "└─"
                } else {
                    "├─"
                };
                out.push_str(&format!(
                    "{stem}{twig} P{}  atoms={} internal={} cut={}  est {}\n",
                    u.part,
                    u.atom_count,
                    u.internal_clauses,
                    u.cut_clauses,
                    human_bytes(u.est_bytes)
                ));
            }
        }
        out
    }

    /// Runs MAP inference over the schedule: WalkSAT per partition, the
    /// worker pool per bin, Gauss-Seidel rounds across bins. Records the
    /// (deterministic) best-cost trajectory in `trace` if provided.
    ///
    /// Equivalent to [`Scheduler::run_from`] with the all-`false`
    /// LazySAT default state.
    pub fn run(&self, trace: Option<&mut TimeCostTrace>) -> ScheduleResult {
        self.run_from(&vec![false; self.mrf.num_atoms()], trace)
    }

    /// Runs MAP inference warm-started from `init` (the session API's
    /// repeated-inference path: the previous best truth seeds every
    /// partition's first pass through the snapshot).
    pub fn run_from(&self, init: &[bool], mut trace: Option<&mut TimeCostTrace>) -> ScheduleResult {
        let n = self.mrf.num_atoms();
        assert_eq!(init.len(), n, "warm-start state must cover every atom");
        let mut truth = init.to_vec();
        let mut best_cost = self.mrf.cost(&truth);
        let mut best_truth = truth.clone();
        // Folded best-so-far curve (exact between cut interactions;
        // resynced to the true assembled cost at every bin boundary).
        let mut running = best_cost;
        let mut flips = 0u64;
        let mut peak = 0usize;
        let mut unit_traces: Vec<TimeCostTrace> = self
            .schedule
            .units
            .iter()
            .map(|_| TimeCostTrace::new())
            .collect();
        let mut unit_flips: Vec<u64> = vec![0; self.schedule.units.len()];
        if let Some(t) = trace.as_mut() {
            t.record(0, best_cost);
        }
        let rounds = self.rounds();
        let mut rounds_run = 0;
        let mut converged = false;

        for round in 0..rounds {
            rounds_run = round + 1;
            let mut round_changed = false;
            for bin in &self.schedule.bins {
                let snapshot = truth.clone();
                let outcomes = self.run_bin(bin, &snapshot, round);
                // Merge in schedule order — identical for any pool size.
                for (&ui, outcome) in bin.items.iter().zip(outcomes) {
                    let unit = &self.schedule.units[ui];
                    let pts = outcome.trace.points();
                    let mut last = pts.first().map_or(Cost::ZERO, |p| p.cost);
                    for p in &pts[1..] {
                        // Saturating: a cut clause shared by two partitions
                        // of one bin can be improved by both, so the folded
                        // estimate may briefly over-credit.
                        running = Cost {
                            hard: (running.hard + p.cost.hard).saturating_sub(last.hard),
                            soft: (running.soft + p.cost.soft - last.soft).max(0.0),
                        };
                        last = p.cost;
                        if let Some(t) = trace.as_mut() {
                            t.record(flips + p.flips, running);
                        }
                    }
                    for p in pts {
                        unit_traces[ui].record_at(p.elapsed, unit_flips[ui] + p.flips, p.cost);
                    }
                    unit_flips[ui] += outcome.flips;
                    flips += outcome.flips;
                    peak = peak.max(outcome.bytes);
                    let atoms = &self.schedule.parts.atoms[unit.part];
                    for (local, &global) in atoms.iter().enumerate() {
                        if truth[global as usize] != outcome.truth[local] {
                            truth[global as usize] = outcome.truth[local];
                            round_changed = true;
                        }
                    }
                }
                // Resync with the true assembled cost: within a bin two
                // partitions may have both claimed the same cut clause.
                let cost = self.mrf.cost(&truth);
                running = cost;
                if cost.better_than(best_cost) {
                    best_cost = cost;
                    best_truth.copy_from_slice(&truth);
                    if let Some(t) = trace.as_mut() {
                        t.record(flips, cost);
                    }
                }
            }
            if !round_changed {
                converged = true;
                break;
            }
        }
        if let Some(t) = trace.as_mut() {
            t.record(flips, best_cost);
        }
        ScheduleResult {
            truth: best_truth,
            cost: best_cost,
            flips,
            peak_partition_bytes: peak,
            rounds_run,
            converged,
            threads: self.config.threads.max(1),
            unit_traces,
        }
    }

    /// Runs marginal inference over the schedule: MC-SAT per partition,
    /// conditioned on a MAP mode when cut clauses couple partitions
    /// (exact factorization when they don't — marginals decompose over
    /// components). Atoms outside every partition are uniform (0.5).
    ///
    /// Errors if the MRF has negative-weight clauses (MC-SAT's slice
    /// construction requires non-negative weights).
    pub fn run_marginal(&self, params: &McSatParams) -> Result<MarginalSamples, MlnError> {
        for c in self.mrf.clauses() {
            if c.weight.signum() < 0 {
                return Err(MlnError::general(
                    "MC-SAT marginal inference requires non-negative clause weights",
                ));
            }
        }
        let mut flips = 0u64;
        let condition_state = if self.schedule.parts.cut_clauses.is_empty() {
            vec![false; self.mrf.num_atoms()]
        } else {
            let map_mode = self.run(None);
            flips += map_mode.flips;
            map_mode.truth
        };
        let mut marginals = vec![0.5f64; self.mrf.num_atoms()];
        let mut clause_sat = vec![f64::NAN; self.mrf.num_clauses()];
        for bin in &self.schedule.bins {
            let jobs = &bin.items;
            let run_unit = |ui: usize| -> (Vec<f64>, Vec<(u32, f64)>, u64) {
                let unit = &self.schedule.units[ui];
                let atoms = &self.schedule.parts.atoms[unit.part];
                let cu = self.condition_unit_tracked(unit.part, atoms, &condition_state);
                let seed = derive_seed(params.seed, unit.part, 0);
                let mut mc =
                    McSat::new(&cu.sub, seed).expect("weights validated non-negative above");
                let (probs, sub_sat) = mc.marginals_with_clause_stats(params);
                let mut sat: Vec<(u32, f64)> = Vec::new();
                for (fi, contrib) in cu.contributors.iter().enumerate() {
                    for &ci in contrib {
                        sat.push((ci, sub_sat[fi]));
                    }
                }
                for &ci in &cu.external_sat {
                    sat.push((ci, 1.0));
                }
                for &(ci, satisfied) in &cu.residual {
                    sat.push((ci, f64::from(u8::from(satisfied))));
                }
                (probs, sat, mc.flips())
            };
            let locals = self.pool_map(jobs, run_unit);
            for (&ui, (local, sat, unit_flips)) in jobs.iter().zip(locals) {
                let atoms = &self.schedule.parts.atoms[self.schedule.units[ui].part];
                for (i, &a) in atoms.iter().enumerate() {
                    marginals[a as usize] = local[i];
                }
                // First write wins: a cut clause is sampled once per
                // touching partition, and schedule order is fixed.
                for (ci, p) in sat {
                    if clause_sat[ci as usize].is_nan() {
                        clause_sat[ci as usize] = p;
                    }
                }
                flips += unit_flips;
            }
        }
        // Every clause lives in some scheduled partition, but stay total:
        // anything unwritten falls back to its truth at the conditioning
        // state.
        for (ci, p) in clause_sat.iter_mut().enumerate() {
            if p.is_nan() {
                *p = f64::from(u8::from(self.mrf.clause(ci).satisfied(&condition_state)));
            }
        }
        Ok(MarginalSamples {
            probs: marginals,
            clause_sat,
            flips,
        })
    }

    /// Executes one bin: workers steal partition passes off a shared
    /// queue; outcomes come back in schedule order.
    fn run_bin(&self, bin: &Bin, snapshot: &[bool], round: usize) -> Vec<UnitOutcome> {
        let total_atoms = self.mrf.num_atoms().max(1) as u64;
        let rounds = self.rounds() as u64;
        let budget_of = |u: &ScheduleUnit| {
            (self.config.search.max_flips * u.atom_count as u64 / (total_atoms * rounds)).max(1)
        };
        let pass = |ui: usize| {
            let unit = &self.schedule.units[ui];
            self.run_unit_pass(
                unit,
                snapshot,
                budget_of(unit),
                derive_seed(self.config.search.seed, unit.part, round),
            )
        };
        self.pool_map(&bin.items, pass)
    }

    /// Maps `f` over unit indices with the work-stealing pool: workers
    /// claim the next job off a shared counter as they finish, results
    /// come back in job order. Sequential (no threads spawned) when the
    /// pool — or the job list — has a single entry.
    fn pool_map<T, F>(&self, jobs: &[usize], f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let workers = self.config.threads.max(1).min(jobs.len());
        if workers <= 1 {
            return jobs.iter().map(|&ui| f(ui)).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<parking_lot::Mutex<Option<T>>> =
            jobs.iter().map(|_| parking_lot::Mutex::new(None)).collect();
        crossbeam::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|_| loop {
                    let j = next.fetch_add(1, Ordering::Relaxed);
                    if j >= jobs.len() {
                        break;
                    }
                    *slots[j].lock() = Some(f(jobs[j]));
                });
            }
        })
        .expect("scheduler worker panicked");
        slots
            .into_iter()
            .map(|s| s.into_inner().expect("missing worker result"))
            .collect()
    }

    /// One WalkSAT pass over a conditioned partition.
    fn run_unit_pass(
        &self,
        unit: &ScheduleUnit,
        snapshot: &[bool],
        budget: u64,
        seed: u64,
    ) -> UnitOutcome {
        let atoms = &self.schedule.parts.atoms[unit.part];
        let (sub, init) = self.condition_unit(unit.part, atoms, snapshot);
        let bytes = MemoryFootprint::of(&sub).total();
        let mut ws = WalkSat::with_assignment(&sub, init, seed);
        let mut trace = TimeCostTrace::new();
        trace.record(0, ws.best_cost());
        let mut last_best = ws.best_cost();
        for _ in 0..budget {
            if !ws.step(self.config.search.noise) {
                break;
            }
            if ws.best_cost().better_than(last_best) {
                last_best = ws.best_cost();
                trace.record(ws.flips(), ws.best_cost());
            }
        }
        UnitOutcome {
            truth: ws.best_truth().to_vec(),
            flips: ws.flips(),
            bytes,
            trace,
        }
    }

    /// Builds the sub-MRF of partition `pi` conditioned on the rest of
    /// the snapshot (§3.4), plus the partition's initial state: internal
    /// clauses come over verbatim; cut clauses with an externally
    /// satisfied literal drop out for the pass; other cut clauses lose
    /// their external literals.
    fn condition_unit(&self, pi: usize, atoms: &[AtomId], global: &[bool]) -> (Mrf, Vec<bool>) {
        let cu = self.condition_unit_tracked(pi, atoms, global);
        (cu.sub, cu.init)
    }

    /// [`Scheduler::condition_unit`] that also maps every global clause
    /// of the partition to its fate in the sub-MRF, so per-sub-clause
    /// sampler statistics can be attributed back to global clause ids.
    fn condition_unit_tracked(
        &self,
        pi: usize,
        atoms: &[AtomId],
        global: &[bool],
    ) -> ConditionedUnit {
        let mut dense: FxHashMap<AtomId, AtomId> = FxHashMap::default();
        for (i, &a) in atoms.iter().enumerate() {
            dense.insert(a, i as AtomId);
        }
        let mut b = MrfBuilder::new();
        b.reserve_atoms(atoms.len());
        // Contributing global clauses per *builder* index (distinct cut
        // clauses can collapse onto one sub-clause once their external
        // literals drop), plus clauses the sub-MRF cannot represent.
        let mut by_builder: Vec<Vec<u32>> = Vec::new();
        let mut external_sat: Vec<u32> = Vec::new();
        let mut residual: Vec<(u32, bool)> = Vec::new();
        let mut track = |slot: Option<u32>, ci: u32, by_builder: &mut Vec<Vec<u32>>| match slot {
            Some(bi) => {
                if bi as usize == by_builder.len() {
                    by_builder.push(vec![ci]);
                } else {
                    by_builder[bi as usize].push(ci);
                }
            }
            // Empty after conditioning (every literal external and
            // false): constant for the pass, never satisfiable.
            None => residual.push((ci, false)),
        };
        for &ci in &self.schedule.parts.internal_clauses[pi] {
            let c = self.mrf.clause(ci as usize);
            let lits: Vec<Lit> = c
                .lits
                .iter()
                .map(|l| Lit::new(dense[&l.atom()], l.is_positive()))
                .collect();
            let slot = b.add_clause_tracked(lits, c.weight);
            track(slot, ci, &mut by_builder);
        }
        for &ci in &self.schedule.cut_by_part[pi] {
            let c = self.mrf.clause(ci as usize);
            let mut lits = Vec::new();
            let mut satisfied_externally = false;
            for l in c.lits.iter() {
                match dense.get(&l.atom()) {
                    Some(&local) => lits.push(Lit::new(local, l.is_positive())),
                    None => {
                        if l.eval(global[l.atom() as usize]) {
                            satisfied_externally = true;
                            break;
                        }
                        // Externally false literal: drop it.
                    }
                }
            }
            if satisfied_externally {
                external_sat.push(ci);
                continue; // fixed for this pass
            }
            let slot = b.add_clause_tracked(lits, c.weight);
            track(slot, ci, &mut by_builder);
        }
        let (sub, map) = b.finish_mapped();
        let mut contributors: Vec<Vec<u32>> = vec![Vec::new(); sub.num_clauses()];
        for (bi, contrib) in by_builder.into_iter().enumerate() {
            match map[bi] {
                Some(fi) => contributors[fi as usize] = contrib,
                // Merged weight cancelled at finish: the sampler never
                // sees the clause. Fall back to its (deterministic)
                // truth at the conditioning state.
                None => {
                    for ci in contrib {
                        let sat = self.mrf.clause(ci as usize).satisfied(global);
                        residual.push((ci, sat));
                    }
                }
            }
        }
        let init: Vec<bool> = atoms.iter().map(|&a| global[a as usize]).collect();
        ConditionedUnit {
            sub,
            init,
            contributors,
            external_sat,
            residual,
        }
    }
}

/// A partition's conditioned sub-MRF plus the bookkeeping that maps
/// sampler statistics back to global clause ids (see
/// [`Scheduler::condition_unit_tracked`]).
struct ConditionedUnit {
    sub: Mrf,
    init: Vec<bool>,
    /// Global clause ids feeding each final sub-clause.
    contributors: Vec<Vec<u32>>,
    /// Cut clauses satisfied externally at the conditioning state.
    external_sat: Vec<u32>,
    /// Clauses the sub-MRF cannot represent (conditioned to a constant,
    /// or merged weight cancelled), with their truth at the state.
    residual: Vec<(u32, bool)>,
}

/// Derives the RNG seed of one partition pass. Depends only on the base
/// seed, the partition id, and the round — never on the worker thread or
/// execution order — so runs are reproducible for any thread count.
fn derive_seed(base: u64, part: usize, round: usize) -> u64 {
    let mut z = base
        .wrapping_add((part as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add((round as u64).wrapping_mul(0xd1b5_4a32_d192_ed03));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tuffy_mln::weight::Weight;

    /// Example 1 of the paper with N two-atom components.
    fn example1(n: u32) -> Mrf {
        let mut b = MrfBuilder::new();
        for i in 0..n {
            let (x, y) = (2 * i, 2 * i + 1);
            b.add_clause(vec![Lit::pos(x)], Weight::Soft(1.0));
            b.add_clause(vec![Lit::pos(y)], Weight::Soft(1.0));
            b.add_clause(vec![Lit::pos(x), Lit::pos(y)], Weight::Soft(-1.0));
        }
        b.finish()
    }

    /// Example 2 of the paper: two dense "all equal" clusters joined by
    /// one bridge clause, satisfied at the all-true optimum.
    fn example2() -> Mrf {
        let mut b = MrfBuilder::new();
        let cluster = |b: &mut MrfBuilder, base: u32| {
            for i in 0..3u32 {
                for j in (i + 1)..3 {
                    b.add_clause(
                        vec![Lit::neg(base + i), Lit::pos(base + j)],
                        Weight::Soft(2.0),
                    );
                    b.add_clause(
                        vec![Lit::pos(base + i), Lit::neg(base + j)],
                        Weight::Soft(2.0),
                    );
                }
            }
            for i in 0..3u32 {
                b.add_clause(vec![Lit::pos(base + i)], Weight::Soft(0.5));
            }
        };
        cluster(&mut b, 0);
        cluster(&mut b, 3);
        b.add_clause(vec![Lit::neg(0), Lit::pos(3)], Weight::Soft(1.0));
        b.finish()
    }

    fn config(max_flips: u64, seed: u64) -> SchedulerConfig {
        SchedulerConfig {
            search: WalkSatParams {
                max_flips,
                seed,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn parallel_matches_sequential_quality() {
        let m = example1(64);
        let s = Scheduler::new(
            &m,
            SchedulerConfig {
                threads: 4,
                ..config(64 * 100, 21)
            },
        );
        let r = s.run(None);
        assert_eq!(r.cost, Cost::soft(64.0)); // global optimum
        assert!(r.truth.iter().all(|&t| t));
        assert_eq!(r.threads, 4);
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let m = example1(16);
        let run = |threads| {
            let mut trace = TimeCostTrace::new();
            let s = Scheduler::new(
                &m,
                SchedulerConfig {
                    threads,
                    ..config(16 * 200, 4)
                },
            );
            let r = s.run(Some(&mut trace));
            let curve: Vec<(u64, u64, String)> = trace
                .points()
                .iter()
                .map(|p| (p.flips, p.cost.hard, format!("{}", p.cost)))
                .collect();
            (r.truth, format!("{}", r.cost), r.flips, curve)
        };
        let base = run(1);
        for threads in [2, 4, 8] {
            assert_eq!(run(threads), base, "threads={threads} diverged");
        }
    }

    #[test]
    fn single_thread_is_allowed() {
        let m = example1(4);
        let s = Scheduler::new(
            &m,
            SchedulerConfig {
                threads: 0,
                ..config(4 * 200, 42)
            },
        );
        let r = s.run(None);
        assert_eq!(r.threads, 1);
        assert_eq!(r.cost, Cost::soft(4.0));
    }

    #[test]
    fn reaches_optimum_across_partitions() {
        let m = example2();
        // β = 21 splits the two clusters (budget = β · bytes/unit).
        let s = Scheduler::new(
            &m,
            SchedulerConfig {
                mem_budget: Some(21 * tuffy_mrf::memory::BYTES_PER_SIZE_UNIT),
                rounds: 4,
                ..config(8_000, 9)
            },
        );
        assert!(s.schedule().units.len() >= 2);
        assert!(!s.schedule().parts.cut_clauses.is_empty());
        let r = s.run(None);
        assert!(r.cost.is_zero(), "cost = {}", r.cost);
        assert!(r.truth.iter().all(|&t| t));
    }

    #[test]
    fn conditioning_respects_external_state() {
        let m = example2();
        let s = Scheduler::new(
            &m,
            SchedulerConfig {
                mem_budget: Some(21 * tuffy_mrf::memory::BYTES_PER_SIZE_UNIT),
                ..config(1_000, 1)
            },
        );
        // With the bridge clause ¬a0 ∨ b0: if the external side satisfies
        // it, the conditioned sub-MRF drops the clause.
        let pi = s.schedule().parts.label[0] as usize;
        let atoms = s.schedule().parts.atoms[pi].clone();
        let mut global = vec![false; m.num_atoms()];
        global[3] = true; // external literal true
        let (sub_sat, _) = s.condition_unit(pi, &atoms, &global);
        let global_unsat = vec![false; m.num_atoms()];
        let (sub_unsat, _) = s.condition_unit(pi, &atoms, &global_unsat);
        assert_eq!(sub_sat.clauses().len() + 1, sub_unsat.clauses().len());
    }

    #[test]
    fn unbudgeted_schedule_degenerates_to_components() {
        let m = example2();
        let s = Scheduler::new(&m, config(8_000, 2));
        assert_eq!(s.schedule().units.len(), 1);
        assert_eq!(s.schedule().bins.len(), 1);
        assert!(s.schedule().parts.cut_clauses.is_empty());
        assert_eq!(s.rounds(), 1);
        let r = s.run(None);
        assert!(r.cost.is_zero());
        assert_eq!(r.rounds_run, 1);
    }

    #[test]
    fn huge_budget_is_bit_identical_to_unbudgeted() {
        let m = example1(12);
        let unbudgeted = Scheduler::new(&m, config(4_000, 7)).run(None);
        let budgeted = Scheduler::new(
            &m,
            SchedulerConfig {
                mem_budget: Some(1 << 30),
                ..config(4_000, 7)
            },
        )
        .run(None);
        assert_eq!(unbudgeted.truth, budgeted.truth);
        assert_eq!(unbudgeted.flips, budgeted.flips);
        assert_eq!(format!("{}", unbudgeted.cost), format!("{}", budgeted.cost));
    }

    #[test]
    fn beats_monolithic_walksat_on_equal_budget() {
        // Theorem 3.1's phenomenon: with the same total flips, the
        // partition-aware schedule reaches the global optimum while the
        // monolithic walk keeps breaking already-optimal components.
        let n = 100u32;
        let m = example1(n);
        let budget = 60 * n as u64;
        let aware = Scheduler::new(&m, config(budget, 17)).run(None).cost;
        let mut mono = WalkSat::new(&m, 17);
        mono.run(
            &WalkSatParams {
                max_flips: budget,
                seed: 17,
                ..Default::default()
            },
            None,
        );
        assert_eq!(aware, Cost::soft(n as f64));
        assert!(
            mono.best_cost().soft > aware.soft,
            "monolithic {} should trail partition-aware {}",
            mono.best_cost(),
            aware
        );
    }

    #[test]
    fn converges_early_when_a_round_changes_nothing() {
        let m = example2();
        let s = Scheduler::new(
            &m,
            SchedulerConfig {
                mem_budget: Some(21 * tuffy_mrf::memory::BYTES_PER_SIZE_UNIT),
                rounds: 50,
                ..config(50_000, 3)
            },
        );
        let r = s.run(None);
        assert!(r.converged, "50 rounds should be more than enough");
        assert!(r.rounds_run < 50, "ran all {} rounds", r.rounds_run);
    }

    #[test]
    fn per_partition_traces_cover_every_unit() {
        let m = example1(8);
        let s = Scheduler::new(&m, config(8 * 300, 5));
        let r = s.run(None);
        assert_eq!(r.unit_traces.len(), s.schedule().units.len());
        for t in &r.unit_traces {
            assert!(!t.points().is_empty());
        }
    }

    #[test]
    fn marginals_factor_over_components() {
        // Unit clause `1.0 x` per component: P(x) = e / (1 + e).
        let mut b = MrfBuilder::new();
        for i in 0..6u32 {
            b.add_clause(vec![Lit::pos(i)], Weight::Soft(1.0));
        }
        let m = b.finish();
        let s = Scheduler::new(
            &m,
            SchedulerConfig {
                threads: 3,
                ..config(1_000, 8)
            },
        );
        let p = s
            .run_marginal(&McSatParams {
                samples: 600,
                burn_in: 40,
                sample_sat_steps: 30,
                seed: 8,
                ..Default::default()
            })
            .unwrap();
        let expected = 1f64.exp() / (1.0 + 1f64.exp());
        for (i, &pi) in p.probs.iter().enumerate() {
            assert!((pi - expected).abs() < 0.1, "atom {i}: {pi:.3}");
        }
        // A positive unit clause is satisfied exactly when its atom is
        // true, so the clause-satisfaction column must match the atom
        // marginal bit for bit.
        assert_eq!(p.clause_sat.len(), m.num_clauses());
        for (ci, &ps) in p.clause_sat.iter().enumerate() {
            assert_eq!(ps, p.probs[ci], "clause {ci}");
        }
        assert!(p.flips > 0, "samplers should report their work");
    }

    #[test]
    fn run_from_all_false_matches_run() {
        let m = example1(8);
        let s = Scheduler::new(&m, config(8 * 200, 12));
        let cold = s.run(None);
        let warm = s.run_from(&vec![false; m.num_atoms()], None);
        assert_eq!(cold.truth, warm.truth);
        assert_eq!(cold.flips, warm.flips);
        assert_eq!(format!("{}", cold.cost), format!("{}", warm.cost));
    }

    #[test]
    fn warm_start_from_optimum_cannot_regress() {
        let m = example1(8);
        let s = Scheduler::new(&m, config(8 * 200, 12));
        let optimum = vec![true; m.num_atoms()];
        let seed_cost = m.cost(&optimum);
        let r = s.run_from(&optimum, None);
        assert!(!seed_cost.better_than(r.cost), "warm start regressed");
    }

    #[test]
    fn marginals_reject_negative_weights() {
        let m = example1(2); // contains a −1 clause
        let s = Scheduler::new(&m, config(100, 1));
        assert!(s.run_marginal(&McSatParams::default()).is_err());
    }

    #[test]
    fn explain_names_every_partition() {
        let m = example2();
        let s = Scheduler::new(
            &m,
            SchedulerConfig {
                mem_budget: Some(21 * tuffy_mrf::memory::BYTES_PER_SIZE_UNIT),
                ..config(1_000, 1)
            },
        );
        let text = s.explain();
        assert!(text.starts_with("Schedule: "));
        for u in &s.schedule().units {
            assert!(text.contains(&format!("P{}", u.part)), "{text}");
        }
        assert!(text.contains("cut: 1 clauses"), "{text}");
    }
}
