//! Time-cost traces — the raw data behind Figures 3–6 and 8.

use std::time::{Duration, Instant};
use tuffy_mrf::Cost;

/// One sample of a best-so-far cost curve.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TracePoint {
    /// Wall time since the trace started.
    pub elapsed: Duration,
    /// Flips performed so far.
    pub flips: u64,
    /// Best cost found so far.
    pub cost: Cost,
}

/// Records the best-so-far cost over time during a search.
#[derive(Clone, Debug)]
pub struct TimeCostTrace {
    start: Instant,
    /// Extra time to attribute to work done before the trace started
    /// (e.g. grounding, so plots share the paper's time axis).
    pub offset: Duration,
    points: Vec<TracePoint>,
}

impl Default for TimeCostTrace {
    fn default() -> Self {
        Self::new()
    }
}

impl TimeCostTrace {
    /// Starts a new trace at the current instant.
    pub fn new() -> Self {
        TimeCostTrace {
            start: Instant::now(),
            offset: Duration::ZERO,
            points: Vec::new(),
        }
    }

    /// Starts a trace whose time axis begins `offset` in the past
    /// (typically the grounding time, as in Figure 3).
    pub fn with_offset(offset: Duration) -> Self {
        TimeCostTrace {
            start: Instant::now(),
            offset,
            points: Vec::new(),
        }
    }

    /// Records a sample.
    pub fn record(&mut self, flips: u64, cost: Cost) {
        self.points.push(TracePoint {
            elapsed: self.start.elapsed() + self.offset,
            flips,
            cost,
        });
    }

    /// Records a sample with an explicit elapsed time (used by simulated
    /// clocks, e.g. RDBMS-backed search charging I/O latency).
    pub fn record_at(&mut self, elapsed: Duration, flips: u64, cost: Cost) {
        self.points.push(TracePoint {
            elapsed: elapsed + self.offset,
            flips,
            cost,
        });
    }

    /// The recorded samples.
    pub fn points(&self) -> &[TracePoint] {
        &self.points
    }

    /// The final (best) cost, if any samples were recorded.
    pub fn final_cost(&self) -> Option<Cost> {
        self.points.last().map(|p| p.cost)
    }

    /// The best cost achieved at or before `t`, if any.
    pub fn cost_at(&self, t: Duration) -> Option<Cost> {
        self.points
            .iter()
            .take_while(|p| p.elapsed <= t)
            .last()
            .map(|p| p.cost)
    }

    /// Renders the trace as `time_secs<TAB>cost` lines for plotting.
    pub fn to_tsv(&self) -> String {
        let mut out = String::new();
        for p in &self.points {
            out.push_str(&format!(
                "{:.3}\t{}\t{}\n",
                p.elapsed.as_secs_f64(),
                p.flips,
                p.cost
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_monotone_time() {
        let mut t = TimeCostTrace::new();
        t.record(0, Cost::soft(10.0));
        t.record(5, Cost::soft(8.0));
        assert_eq!(t.points().len(), 2);
        assert!(t.points()[1].elapsed >= t.points()[0].elapsed);
        assert_eq!(t.final_cost(), Some(Cost::soft(8.0)));
    }

    #[test]
    fn offset_shifts_axis() {
        let mut t = TimeCostTrace::with_offset(Duration::from_secs(100));
        t.record(0, Cost::soft(1.0));
        assert!(t.points()[0].elapsed >= Duration::from_secs(100));
    }

    #[test]
    fn cost_at_interpolates_stepwise() {
        let mut t = TimeCostTrace::new();
        t.record_at(Duration::from_secs(1), 0, Cost::soft(10.0));
        t.record_at(Duration::from_secs(5), 0, Cost::soft(3.0));
        assert_eq!(t.cost_at(Duration::from_secs(2)), Some(Cost::soft(10.0)));
        assert_eq!(t.cost_at(Duration::from_secs(6)), Some(Cost::soft(3.0)));
        assert_eq!(t.cost_at(Duration::from_millis(500)), None);
    }
}
