//! IE — Information Extraction (segmenting Citeseer citation strings into
//! structured fields).
//!
//! Structure that matters: the MLN is dominated by token-specific lexicon
//! rules (~1K rules in Table 1), and the MRF fragments into *thousands*
//! of tiny components — "the MRF of the Information Extraction (IE)
//! dataset contains thousands of 2-cliques and 3-cliques" (§3.3). Each
//! citation yields one short chain of position-label atoms; nothing links
//! citations to each other.

use crate::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write;

/// The extraction fields.
const FIELDS: [&str; 3] = ["FAuthor", "FTitle", "FVenue"];

/// Generates an IE instance with `citations` citation strings and a
/// lexicon of `vocab` token types.
///
/// Citations are 2–4 tokens long, so components are 2–4 atom cliques —
/// the shape §3.3 describes.
pub fn ie(citations: usize, vocab: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let vocab = vocab.max(6);
    let mut program = String::new();
    // 18 relations as in Table 1 (the real MLN has many helper
    // predicates; the ones beyond the core four are schema-only here).
    program.push_str("*token(word, position, citation)\n");
    program.push_str("*next(position, position, citation)\n");
    program.push_str("*first(position, citation)\n");
    program.push_str("*last(position, citation)\n");
    program.push_str("field(citation, position, fieldtype)\n");
    for aux in [
        "*isDigit(word)",
        "*isInitial(word)",
        "*isDate(word)",
        "*hasComma(position, citation)",
        "*hasPeriod(position, citation)",
        "*followsComma(position, citation)",
        "*capitalized(word)",
        "*quoted(position, citation)",
        "*inParens(position, citation)",
        "*isPageNo(word)",
        "*isEditor(word)",
        "*isProceedings(word)",
        "*centerPos(position, citation)",
    ] {
        program.push_str(aux);
        program.push('\n');
    }

    // Structural rules.
    program.push_str("3 field(c, p, f1), field(c, p, f2) => f1 = f2\n");
    program.push_str("1 field(c, p1, f), next(p1, p2, c) => field(c, p2, f)\n");
    program.push_str("0.6 first(p, c) => field(c, p, FAuthor)\n");
    program.push_str("0.6 last(p, c) => field(c, p, FVenue)\n");
    // The lexicon: one rule per (token type, field) with a learned-looking
    // weight — this is where the paper's ~1K rules come from.
    for w in 0..vocab {
        let f = FIELDS[w % FIELDS.len()];
        let weight = 0.4 + 1.2 * (w % 7) as f64 / 7.0;
        let _ = writeln!(program, "{weight:.2} token(W{w}, p, c) => field(c, p, {f})");
    }

    // Evidence: short token chains, one per citation.
    let mut evidence = String::new();
    for c in 0..citations {
        let len = 2 + rng.gen_range(0..3); // 2..=4 tokens
        for p in 0..len {
            let w = rng.gen_range(0..vocab);
            let _ = writeln!(evidence, "token(W{w}, Pos{p}, C{c})");
            if p + 1 < len {
                let _ = writeln!(evidence, "next(Pos{p}, Pos{}, C{c})", p + 1);
            }
        }
        let _ = writeln!(evidence, "first(Pos0, C{c})");
        let _ = writeln!(evidence, "last(Pos{}, C{c})", len - 1);
        // A sprinkle of auxiliary evidence for schema realism.
        if rng.gen_bool(0.3) {
            let _ = writeln!(evidence, "hasComma(Pos{}, C{c})", rng.gen_range(0..len));
        }
    }
    crate::parse("IE", &program, &evidence)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tuffy_grounder::{ground_bottom_up, GroundingMode};
    use tuffy_mrf::ComponentSet;
    use tuffy_rdbms::OptimizerConfig;

    #[test]
    fn matches_table1_shape() {
        let d = ie(30, 120, 1);
        assert_eq!(d.program.predicates.len(), 18); // Table 1: 18 relations
        assert!(
            d.program.rules.len() > 100,
            "token rules dominate: {}",
            d.program.rules.len()
        );
    }

    #[test]
    fn one_small_component_per_citation() {
        let n = 40;
        let d = ie(n, 30, 2);
        let g = ground_bottom_up(
            &d.program,
            &d.evidence,
            GroundingMode::LazyClosure,
            &OptimizerConfig::default(),
        )
        .unwrap();
        let cs = ComponentSet::detect(&g.mrf);
        // One component per citation (a citation whose tokens produce no
        // rules could drop out, but the lexicon covers every token).
        assert_eq!(cs.nontrivial_count(), n);
        // Components are small: positions × fields atoms each.
        for i in 0..cs.count() {
            assert!(cs.atoms[i].len() <= 4 * FIELDS.len());
        }
    }
}
