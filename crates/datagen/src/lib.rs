//! # tuffy-datagen — synthetic testbeds for the Tuffy evaluation
//!
//! The paper evaluates on four MLN testbeds (Table 1): Link Prediction
//! (LP), Information Extraction (IE), Relational Classification (RC), and
//! Entity Resolution (ER), taken from the Alchemy website and the Cora
//! dataset. Those datasets are not redistributable here, so this crate
//! generates seeded synthetic equivalents calibrated to the *structural*
//! properties each experiment depends on:
//!
//! | testbed | what matters in the paper | how the generator preserves it |
//! |---|---|---|
//! | LP | 22 relations, ~94 rules, one component | department schema; per-phase rule instantiations; everything connected through shared professors |
//! | IE | ~1K (mostly token-specific) rules; thousands of 2/3-clique components | per-token lexicon rules; one small chain component per citation |
//! | RC | Figure 1's rules; hundreds of medium components | citation/coauthor clusters with partial labels; one component per cluster |
//! | ER | ~3.8K per-word rules; a single *dense* component (transitivity) | shared-word record pairs + transitivity/symmetry over `sameBib` |
//!
//! Generators emit concrete MLN + evidence source text and parse it with
//! the production parser, so every experiment exercises the full
//! pipeline. A `scale` knob grows each testbed; the default scales keep
//! the slowest baseline (top-down grounding) tractable while preserving
//! the paper's qualitative contrasts.

pub mod er;
pub mod example1;
pub mod ie;
pub mod lp;
pub mod rc;
pub mod split;
pub mod table1;

pub use er::{er, er_scaled};
pub use example1::example1;
pub use ie::ie;
pub use lp::lp;
pub use rc::{rc, rc_scaled, rc_with_labels};
pub use split::LabelSplit;
pub use table1::{paper_table1, Table1Row};

use tuffy_mln::evidence::EvidenceSet;
use tuffy_mln::program::MlnProgram;

/// A generated testbed: a name plus a fully parsed program and its
/// evidence set.
pub struct Dataset {
    /// Short dataset name ("LP", "IE", "RC", "ER", …).
    pub name: String,
    /// The parsed program.
    pub program: MlnProgram,
    /// The parsed evidence.
    pub evidence: EvidenceSet,
}

pub(crate) fn parse(name: &str, program_src: &str, evidence_src: &str) -> Dataset {
    let mut program = tuffy_mln::parser::parse_program(program_src)
        .unwrap_or_else(|e| panic!("{name} program: {e}"));
    let evidence = tuffy_mln::parser::parse_evidence(&mut program, evidence_src)
        .unwrap_or_else(|e| panic!("{name} evidence: {e}"));
    Dataset {
        name: name.to_string(),
        program,
        evidence,
    }
}
