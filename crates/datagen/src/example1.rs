//! Example 1 of the paper (§3.3): N identical two-atom components.
//!
//! Each component `i` holds atoms `{X_i, Y_i}` and clauses
//! `{(X_i, 1), (Y_i, 1), (X_i ∨ Y_i, −1)}`. Component-aware WalkSAT
//! reaches every component's optimum in ≤4 expected steps; monolithic
//! WalkSAT needs at least `2^{N r/(2+r)}` more steps (Theorem 3.1 — the
//! gap Figure 8 plots for N = 1000).
//!
//! Expressed as an MLN: one closed predicate `node(id)` supplies the
//! domain, and three weighted rules over query predicates `x(id)`,
//! `y(id)` produce exactly the paper's clauses per constant.

use crate::Dataset;
use std::fmt::Write;

/// Generates Example 1 with `n` components.
pub fn example1(n: usize) -> Dataset {
    let program = "\
*node(id)
x(id)
y(id)
1 x(v)
1 y(v)
-1 x(v) v y(v)
";
    let mut evidence = String::new();
    for i in 0..n {
        let _ = writeln!(evidence, "node(N{i})");
    }
    crate::parse("Example1", program, &evidence)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tuffy_grounder::{ground_bottom_up, GroundingMode};
    use tuffy_mrf::ComponentSet;
    use tuffy_rdbms::OptimizerConfig;

    #[test]
    fn grounds_to_n_two_atom_components() {
        let n = 25;
        let d = example1(n);
        let g = ground_bottom_up(
            &d.program,
            &d.evidence,
            GroundingMode::LazyClosure,
            &OptimizerConfig::default(),
        )
        .unwrap();
        assert_eq!(g.stats.atoms, 2 * n);
        assert_eq!(g.stats.clauses, 3 * n);
        let cs = ComponentSet::detect(&g.mrf);
        assert_eq!(cs.nontrivial_count(), n);
        for i in 0..cs.count() {
            if !cs.clauses[i].is_empty() {
                assert_eq!(cs.atoms[i].len(), 2);
                assert_eq!(cs.clauses[i].len(), 3);
            }
        }
    }

    #[test]
    fn optimum_cost_is_n() {
        // Per component the optimum X=Y=true costs exactly 1 (the
        // negative clause is satisfied, hence violated).
        let n = 10;
        let d = example1(n);
        let g = ground_bottom_up(
            &d.program,
            &d.evidence,
            GroundingMode::LazyClosure,
            &OptimizerConfig::default(),
        )
        .unwrap();
        let all_true = vec![true; g.mrf.num_atoms()];
        assert_eq!(g.mrf.cost(&all_true).soft, n as f64);
        let all_false = vec![false; g.mrf.num_atoms()];
        assert_eq!(g.mrf.cost(&all_false).soft, 2.0 * n as f64);
    }
}
