//! Labeled train/held-out splits for weight learning.
//!
//! Weight learning (the `tuffy-learn` crate) needs three views of one
//! dataset: the *structural* evidence every configuration shares
//! (closed-world predicates: authorship, citations, word overlap), a
//! *train* fraction of the open-predicate labels, and the *held-out*
//! remainder used only for evaluation. [`Dataset::split_labels`]
//! produces all three deterministically from a seed, with an optional
//! label-noise knob that flips a fraction of the train labels — the
//! standard robustness stressor for discriminative learners.

use crate::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tuffy_mln::evidence::{Evidence, EvidenceSet};

/// One dataset's evidence split for learning; see [`Dataset::split_labels`].
pub struct LabelSplit {
    /// Structural (closed-world) evidence only: every open-predicate
    /// label removed, so label atoms ground as query atoms. This is the
    /// evidence a learning engine grounds under.
    pub unlabeled: EvidenceSet,
    /// Structural evidence plus the train labels (post-noise) — the
    /// evidence a serving engine grounds under when predicting the
    /// held-out labels.
    pub train: EvidenceSet,
    /// The train labels after noise, in dataset insertion order: the
    /// labeled world a learner fits against.
    pub train_labels: Vec<Evidence>,
    /// The held-out labels, always noise-free, in dataset insertion
    /// order: the evaluation target.
    pub held_out: Vec<Evidence>,
    /// How many train labels the noise knob flipped.
    pub noise_flips: usize,
}

impl Dataset {
    /// Splits this dataset's open-predicate labels into a train fraction
    /// (`train_frac`) and a held-out remainder, flipping each train
    /// label with probability `noise`.
    ///
    /// Labels are the evidence assertions on open-world (query)
    /// predicates — e.g. `cat(P, C)` in RC — while closed-world
    /// assertions are structural and appear in every output set. The
    /// split is deterministic: assignments and noise draws are made in
    /// evidence insertion order from a `StdRng` seeded with `seed`, so
    /// equal `(train_frac, noise, seed)` always produce byte-identical
    /// splits.
    pub fn split_labels(&self, train_frac: f64, noise: f64, seed: u64) -> LabelSplit {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut unlabeled = EvidenceSet::new();
        let mut train = EvidenceSet::new();
        let mut train_labels = Vec::new();
        let mut held_out = Vec::new();
        let mut noise_flips = 0usize;
        for ev in self.evidence.iter() {
            if self.program.predicate(ev.atom.predicate).closed_world {
                unlabeled
                    .add(&self.program, ev.atom.clone(), ev.positive)
                    .expect("structural evidence re-adds cleanly");
                train
                    .add(&self.program, ev.atom.clone(), ev.positive)
                    .expect("structural evidence re-adds cleanly");
                continue;
            }
            // A label. Draw assignment first, then (for train labels)
            // the noise coin — unconditionally, so the stream layout is
            // identical across noise settings and only the flip outcomes
            // differ.
            if rng.gen_bool(train_frac.clamp(0.0, 1.0)) {
                let mut positive = ev.positive;
                if rng.gen_bool(noise.clamp(0.0, 1.0)) {
                    positive = !positive;
                    noise_flips += 1;
                }
                train
                    .add(&self.program, ev.atom.clone(), positive)
                    .expect("labels are unique per atom");
                train_labels.push(Evidence {
                    atom: ev.atom.clone(),
                    positive,
                });
            } else {
                held_out.push(ev.clone());
            }
        }
        LabelSplit {
            unlabeled,
            train,
            train_labels,
            held_out,
            noise_flips,
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::rc_with_labels;

    #[test]
    fn split_partitions_labels_and_keeps_structure() {
        let d = rc_with_labels(8, 5, 0.5, 3);
        let s = d.split_labels(0.6, 0.0, 11);
        let total_labels = s.train_labels.len() + s.held_out.len();
        assert!(total_labels > 0);
        assert_eq!(s.noise_flips, 0);
        // Structural evidence appears in both sets; labels partition.
        assert_eq!(s.train.len(), s.unlabeled.len() + s.train_labels.len());
        assert_eq!(d.evidence.len(), s.unlabeled.len() + total_labels);
        // No label survives in the unlabeled view.
        for ev in s.unlabeled.iter() {
            assert!(d.program.predicate(ev.atom.predicate).closed_world);
        }
        // Roughly the requested fraction lands in train.
        let frac = s.train_labels.len() as f64 / total_labels as f64;
        assert!((0.3..=0.9).contains(&frac), "train fraction {frac}");
    }

    #[test]
    fn split_is_deterministic_by_seed() {
        let d = rc_with_labels(6, 5, 0.5, 3);
        let a = d.split_labels(0.5, 0.1, 7);
        let b = d.split_labels(0.5, 0.1, 7);
        assert_eq!(a.train_labels, b.train_labels);
        assert_eq!(a.held_out, b.held_out);
        assert_eq!(a.noise_flips, b.noise_flips);
        let c = d.split_labels(0.5, 0.1, 8);
        assert!(a.train_labels != c.train_labels || a.held_out != c.held_out);
    }

    #[test]
    fn noise_flips_only_train_labels() {
        let d = rc_with_labels(8, 5, 0.6, 3);
        let clean = d.split_labels(0.5, 0.0, 9);
        let noisy = d.split_labels(0.5, 1.0, 9);
        // Same assignment stream: identical held-out sets, and every
        // train label flipped exactly once.
        assert_eq!(clean.held_out, noisy.held_out);
        assert_eq!(noisy.noise_flips, noisy.train_labels.len());
        for (c, n) in clean.train_labels.iter().zip(noisy.train_labels.iter()) {
            assert_eq!(c.atom, n.atom);
            assert_eq!(c.positive, !n.positive);
        }
    }
}
