//! RC — Relational Classification (paper-classification on a Cora-like
//! citation graph; "RC contains all the rules in Figure 1").
//!
//! Structure that matters: the citation/coauthor graph decomposes into
//! hundreds of medium-sized clusters (489 components in the paper), a
//! minority of papers is labeled, and label information propagates along
//! citations and co-authorship. The MLN is exactly Figure 1 plus
//! per-category negative priors (15 rules total, matching Table 1).

use crate::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write;

/// Number of categories (Cora uses a handful of CS areas).
pub const CATEGORIES: usize = 10;

/// Generates an RC instance with roughly `clusters` MRF components and
/// ~30% labeled papers.
pub fn rc(clusters: usize, papers_per_cluster: usize, seed: u64) -> Dataset {
    rc_with_labels(clusters, papers_per_cluster, 0.3, seed)
}

/// Baseline cluster count for [`rc_scaled`] — the size the default
/// experiments run at (`scale == 1`).
pub const RC_BASE_CLUSTERS: usize = 20;
/// Baseline papers per cluster for [`rc_scaled`].
pub const RC_BASE_PAPERS: usize = 6;

/// Generates an RC instance `scale`× the baseline experiment size:
/// `scale == 1` matches the default testbed, `10..=100` produce the
/// out-of-core workloads (evidence and grounded-clause counts grow
/// linearly in `scale` — the cluster count scales while clusters keep
/// the paper's shape, so component structure is preserved).
pub fn rc_scaled(scale: usize, seed: u64) -> Dataset {
    rc(RC_BASE_CLUSTERS * scale.max(1), RC_BASE_PAPERS, seed)
}

/// Generates an RC instance with a chosen labeled fraction.
///
/// Each cluster holds `~papers_per_cluster` papers connected by a random
/// citation tree plus co-author links; `label_frac` of the papers carry a
/// category label as evidence. High label fractions reproduce the paper's
/// RC regime (430K evidence vs 10K query atoms): most candidate
/// groundings are satisfied by evidence and pruned.
pub fn rc_with_labels(
    clusters: usize,
    papers_per_cluster: usize,
    label_frac: f64,
    seed: u64,
) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut program = String::new();
    program.push_str("*paper(paperid, url)\n");
    program.push_str("*wrote(person, paperid)\n");
    program.push_str("*refers(paperid, paperid)\n");
    program.push_str("cat(paperid, category)\n");
    // Figure 1's rules (F1–F3 plus the reverse citation direction).
    program.push_str("5 cat(p, c1), cat(p, c2) => c1 = c2\n");
    program.push_str("1 wrote(x, p1), wrote(x, p2), cat(p1, c) => cat(p2, c)\n");
    program.push_str("2 cat(p1, c), refers(p1, p2) => cat(p2, c)\n");
    program.push_str("2 cat(p1, c), refers(p2, p1) => cat(p2, c)\n");
    // F4 (every paper has an author) is hard.
    program.push_str("paper(p, u) => EXIST x wrote(x, p).\n");
    // Per-category weak negative priors (10 rules → 15 total).
    for c in 0..CATEGORIES {
        let _ = writeln!(program, "-0.05 cat(p, Cat{c})");
    }

    let mut evidence = String::new();
    let mut paper_id = 0usize;
    let mut person_id = 0usize;
    for k in 0..clusters {
        let n = (papers_per_cluster / 2).max(2) + rng.gen_range(0..papers_per_cluster.max(1));
        let papers: Vec<usize> = (0..n).map(|i| paper_id + i).collect();
        paper_id += n;
        // Every paper exists and has an author.
        let cluster_authors = 1 + n / 3;
        for (i, &p) in papers.iter().enumerate() {
            let _ = writeln!(evidence, "paper(P{p}, Url{p})");
            let a = person_id + (i % cluster_authors);
            let _ = writeln!(evidence, "wrote(A{a}, P{p})");
            // Some papers have a second author in the same cluster.
            if rng.gen_bool(0.4) {
                let b = person_id + rng.gen_range(0..cluster_authors);
                if b != a {
                    let _ = writeln!(evidence, "wrote(A{b}, P{p})");
                }
            }
        }
        person_id += cluster_authors;
        // Citation tree + a few extra intra-cluster edges.
        for i in 1..n {
            let j = rng.gen_range(0..i);
            let _ = writeln!(evidence, "refers(P{}, P{})", papers[i], papers[j]);
        }
        for _ in 0..n / 4 {
            let i = rng.gen_range(0..n);
            let j = rng.gen_range(0..n);
            if i != j {
                let _ = writeln!(evidence, "refers(P{}, P{})", papers[i], papers[j]);
            }
        }
        // Label a fraction of the papers; bias each cluster toward one
        // category.
        let dominant = k % CATEGORIES;
        for &p in &papers {
            if rng.gen_bool(label_frac) {
                let c = if rng.gen_bool(0.8) {
                    dominant
                } else {
                    rng.gen_range(0..CATEGORIES)
                };
                let _ = writeln!(evidence, "cat(P{p}, Cat{c})");
            }
        }
    }
    crate::parse("RC", &program, &evidence)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tuffy_grounder::{ground_bottom_up, GroundingMode};
    use tuffy_mrf::ComponentSet;
    use tuffy_rdbms::OptimizerConfig;

    #[test]
    fn matches_table1_shape() {
        let d = rc(20, 6, 1);
        assert_eq!(d.program.predicates.len(), 4); // Table 1: 4 relations
        assert_eq!(d.program.rules.len(), 15); // Table 1: 15 rules
        assert!(d.evidence.len() > 100);
    }

    #[test]
    fn grounds_into_many_components() {
        let d = rc(15, 5, 2);
        let g = ground_bottom_up(
            &d.program,
            &d.evidence,
            GroundingMode::LazyClosure,
            &OptimizerConfig::default(),
        )
        .unwrap();
        let cs = ComponentSet::detect(&g.mrf);
        // One component per cluster, give or take fully labeled clusters.
        assert!(
            cs.nontrivial_count() >= 8,
            "components = {}",
            cs.nontrivial_count()
        );
        assert!(g.stats.clauses > 50);
    }

    #[test]
    fn scale_knob_grows_linearly() {
        let s1 = rc_scaled(1, 7);
        let s10 = rc_scaled(10, 7);
        assert!(
            s10.evidence.len() > 8 * s1.evidence.len(),
            "10x scale should give ~10x evidence: {} vs {}",
            s10.evidence.len(),
            s1.evidence.len()
        );
    }

    #[test]
    fn deterministic_by_seed() {
        let a = rc(5, 4, 9);
        let b = rc(5, 4, 9);
        assert_eq!(a.evidence.len(), b.evidence.len());
        assert_eq!(a.program.stats(&a.evidence), b.program.stats(&b.evidence));
    }
}
