//! ER — Entity Resolution (deduplicating citation records by word
//! similarity).
//!
//! Structure that matters: thousands of per-word similarity rules (~3.8K
//! rules in Table 1), a `sameBib` query over record pairs, and symmetry +
//! transitivity rules that weld the MRF into a *single, dense* component
//! — the reason ER resists partitioning in Figure 6 ("even 2-way
//! partitioning would cut over 1.4M of the total 2M clauses").

use crate::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write;

/// Baseline entity count for [`er_scaled`] (`scale == 1`).
pub const ER_BASE_ENTITIES: usize = 10;
/// Baseline vocabulary for [`er_scaled`].
pub const ER_BASE_VOCAB: usize = 60;

/// Generates an ER instance `scale`× the baseline experiment size:
/// `scale == 1` matches the default testbed, `10..=100` produce the
/// out-of-core workloads. Entities (and so records) grow linearly with
/// `scale`; the vocabulary stays fixed, so the per-word similarity
/// joins densify — record pairs sharing a word grow *quadratically* —
/// which is exactly the join-state blow-up the spill path exists for.
pub fn er_scaled(scale: usize, seed: u64) -> Dataset {
    er(ER_BASE_ENTITIES * scale.max(1), ER_BASE_VOCAB, seed)
}

/// Generates an ER instance with `entities` underlying true entities,
/// 2–3 duplicate records each, and a vocabulary of `vocab` words.
pub fn er(entities: usize, vocab: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let vocab = vocab.max(10);
    let mut program = String::new();
    // 10 relations (Table 1).
    program.push_str("*hasWordAuthor(bib, word)\n");
    program.push_str("*hasWordTitle(bib, word)\n");
    program.push_str("*hasWordVenue(bib, word)\n");
    program.push_str("sameBib(bib, bib)\n");
    program.push_str("sameAuthor(bib, bib)\n");
    program.push_str("sameTitle(bib, bib)\n");
    for aux in [
        "*commonYear(bib, bib)",
        "*similarLength(bib, bib)",
        "*hasDigits(bib)",
        "*longRecord(bib)",
    ] {
        program.push_str(aux);
        program.push('\n');
    }

    // Reflexivity, symmetry, and transitivity over sameBib; symmetry and
    // transitivity are the density source.
    program.push_str("sameBib(x, x).\n");
    program.push_str("sameBib(x, y) => sameBib(y, x).\n");
    program.push_str("2 sameBib(x, y), sameBib(y, z) => sameBib(x, z)\n");
    program.push_str("-0.3 sameBib(x, y)\n");
    program.push_str("1.5 sameAuthor(x, y), sameTitle(x, y) => sameBib(x, y)\n");
    program.push_str("0.8 sameBib(x, y) => sameAuthor(x, y)\n");
    program.push_str("0.8 sameBib(x, y) => sameTitle(x, y)\n");
    // The per-word similarity rules (the bulk of the 3.8K rules):
    // sharing word W in field F is evidence of a match, with a
    // word-specific weight.
    for w in 0..vocab {
        let weight = 0.2 + 1.6 * (w % 11) as f64 / 11.0;
        let _ = writeln!(
            program,
            "{weight:.2} hasWordAuthor(b1, W{w}), hasWordAuthor(b2, W{w}), b1 != b2 => sameAuthor(b1, b2)"
        );
        let _ = writeln!(
            program,
            "{:.2} hasWordTitle(b1, W{w}), hasWordTitle(b2, W{w}), b1 != b2 => sameBib(b1, b2)",
            weight * 0.8
        );
        if w % 3 == 0 {
            // Discriminative venue words: sharing one *penalizes* a match
            // (e.g. different conferences' boilerplate), the source of
            // the frustrated optimum ER searches over.
            let _ = writeln!(
                program,
                "{:.2} hasWordVenue(b1, W{w}), hasWordVenue(b2, W{w}), b1 != b2 => !sameBib(b1, b2)",
                weight * 0.6
            );
        }
    }

    // Evidence: records as word bags; duplicates share most words, and a
    // few common "stop words" connect everything into one component.
    let mut evidence = String::new();
    let mut bib = 0usize;
    let stop_words = 3.min(vocab);
    for e in 0..entities {
        let copies = 2 + usize::from(rng.gen_bool(0.4));
        // The entity's signature words.
        let base: Vec<usize> = (0..4).map(|_| rng.gen_range(stop_words..vocab)).collect();
        for _ in 0..copies {
            let b = bib;
            bib += 1;
            for (i, &w) in base.iter().enumerate() {
                // Each copy keeps most signature words.
                if rng.gen_bool(0.85) {
                    let field = match i % 3 {
                        0 => "hasWordAuthor",
                        1 => "hasWordTitle",
                        _ => "hasWordVenue",
                    };
                    let _ = writeln!(evidence, "{field}(B{b}, W{w})");
                }
            }
            // Stop words: W0 appears in every record (the global
            // connective making the MRF one dense component, as in the
            // paper's ER), plus a rotating second stop word.
            let _ = writeln!(evidence, "hasWordTitle(B{b}, W0)");
            let sw = 1 + e % (stop_words.max(2) - 1);
            let _ = writeln!(evidence, "hasWordVenue(B{b}, W{sw})");
        }
    }
    crate::parse("ER", &program, &evidence)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tuffy_grounder::{ground_bottom_up, GroundingMode};
    use tuffy_mrf::ComponentSet;
    use tuffy_rdbms::OptimizerConfig;

    #[test]
    fn matches_table1_shape() {
        let d = er(10, 60, 1);
        assert_eq!(d.program.predicates.len(), 10); // Table 1: 10 relations
        assert!(
            d.program.rules.len() > 120,
            "per-word rules dominate: {}",
            d.program.rules.len()
        );
    }

    #[test]
    fn scale_knob_grows_records() {
        let s1 = er_scaled(1, 3);
        let s10 = er_scaled(10, 3);
        assert!(
            s10.evidence.len() > 8 * s1.evidence.len(),
            "10x scale should give ~10x records: {} vs {}",
            s10.evidence.len(),
            s1.evidence.len()
        );
        // Same program (rules depend on vocab, which is fixed).
        assert_eq!(s1.program.rules.len(), s10.program.rules.len());
    }

    #[test]
    fn single_dense_component() {
        let d = er(8, 30, 2);
        let g = ground_bottom_up(
            &d.program,
            &d.evidence,
            GroundingMode::LazyClosure,
            &OptimizerConfig::default(),
        )
        .unwrap();
        let cs = ComponentSet::detect(&g.mrf);
        assert_eq!(cs.nontrivial_count(), 1, "transitivity welds the MRF");
        // Dense: many more clauses than atoms.
        assert!(
            g.mrf.clauses().len() > 2 * g.stats.atoms,
            "{} clauses vs {} atoms",
            g.mrf.clauses().len(),
            g.stats.atoms
        );
    }
}
