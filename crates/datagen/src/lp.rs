//! LP — Link Prediction (student–adviser relationships from an
//! administrative CS-department database; the UW-CSE testbed).
//!
//! Structure that matters: a rich schema (22 relations in Table 1), ~94
//! rules most of which are per-value instantiations of a few templates,
//! and a *single* MRF component — advisers, students, papers, and courses
//! are all transitively connected, so component-aware partitioning buys
//! nothing here (Tables 2/5 report `#components = 1`).

use crate::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write;

/// Academic phases used to instantiate per-phase rules.
const PHASES: [&str; 6] = [
    "PreQuals",
    "PostQuals",
    "PostGenerals",
    "Year1",
    "Year2",
    "Year3plus",
];

/// Positions used to instantiate per-position rules.
const POSITIONS: [&str; 4] = ["Faculty", "Affiliate", "Emeritus", "Visiting"];

/// Generates an LP instance with `professors` advisers and
/// `students_per_prof` students each.
pub fn lp(professors: usize, students_per_prof: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut program = String::new();
    // 22 relations, mirroring the UW-CSE schema (query: advisedBy,
    // tempAdvisedBy).
    let decls = [
        "*professor(person)",
        "*student(person)",
        "*hasPosition(person, position)",
        "*inPhase(person, phase)",
        "*yearsInProgram(person, year)",
        "*taughtBy(course, person, quarter)",
        "*ta(course, person, quarter)",
        "*courseLevel(course, level)",
        "*publication(paperid, person)",
        "*projectMember(project, person)",
        "*sameProject(project, project)",
        "*sameCourse(course, course)",
        "*samePerson(person, person)",
        "*introCourse(course)",
        "*gradCourse(course)",
        "*postQuals(person)",
        "*multiplePubs(person)",
        "*seniorStudent(person)",
        "*juniorFaculty(person)",
        "*longProgram(person)",
        "advisedBy(person, person)",
        "tempAdvisedBy(person, person)",
    ];
    for d in decls {
        program.push_str(d);
        program.push('\n');
    }

    // Core templates.
    program.push_str(
        "2.5 publication(p, s), publication(p, a), student(s), professor(a) => advisedBy(s, a)\n",
    );
    program.push_str(
        "0.8 ta(c, s, q), taughtBy(c, a, q), student(s), professor(a) => advisedBy(s, a)\n",
    );
    program.push_str("1.5 advisedBy(s, a), advisedBy(s, b) => a = b\n");
    program.push_str("1.0 tempAdvisedBy(s, a), advisedBy(s, b) => a = b\n");
    program.push_str("0.7 projectMember(j, s), projectMember(j, a), student(s), professor(a) => advisedBy(s, a)\n");
    program.push_str("-0.4 advisedBy(s, a)\n");
    program.push_str("-0.6 tempAdvisedBy(s, a)\n");
    program.push_str("1.2 advisedBy(s, a) => student(s)\n");
    program.push_str("1.2 advisedBy(s, a) => professor(a)\n");
    program.push_str(
        "0.5 tempAdvisedBy(s, a), publication(p, s), publication(p, a) => advisedBy(s, a)\n",
    );
    // Per-phase and per-position instantiations (the bulk of the 94 rules).
    for (i, phase) in PHASES.iter().enumerate() {
        let w = 0.3 + 0.1 * i as f64;
        let _ = writeln!(
            program,
            "{w:.2} inPhase(s, {phase}), publication(p, s), publication(p, a), professor(a) => advisedBy(s, a)"
        );
        let _ = writeln!(
            program,
            "{:.2} inPhase(s, {phase}), student(s) => EXIST a advisedBy(s, a) v tempAdvisedBy(s, a)",
            0.2 + 0.05 * i as f64
        );
        let _ = writeln!(
            program,
            "0.1 inPhase(s, {phase}), tempAdvisedBy(s, a) => advisedBy(s, a)"
        );
    }
    for (i, pos) in POSITIONS.iter().enumerate() {
        let w = 0.4 + 0.1 * i as f64;
        let _ = writeln!(
            program,
            "{w:.2} hasPosition(a, {pos}), publication(p, a), publication(p, s), student(s) => advisedBy(s, a)"
        );
        let _ = writeln!(
            program,
            "{:.2} hasPosition(a, {pos}), taughtBy(c, a, q), ta(c, s, q) => advisedBy(s, a)",
            0.3 + 0.05 * i as f64
        );
    }
    for y in 1..=8 {
        let _ = writeln!(
            program,
            "{:.2} yearsInProgram(s, Y{y}), publication(p, s), publication(p, a), professor(a) => advisedBy(s, a)",
            0.1 * y as f64
        );
    }
    // Per-(phase, position) interaction rules to round the set out.
    for phase in PHASES.iter() {
        for pos in POSITIONS.iter() {
            let _ = writeln!(
                program,
                "0.05 inPhase(s, {phase}), hasPosition(a, {pos}), tempAdvisedBy(s, a) => advisedBy(s, a)"
            );
        }
    }
    // Per-quarter co-teaching rules.
    for q in 1..=4 {
        let _ = writeln!(
            program,
            "0.45 taughtBy(c, a, Q{q}), ta(c, s, Q{q}), professor(a) => advisedBy(s, a)"
        );
    }
    // Per-year temporary-advising rules.
    for y in 1..=8 {
        let _ = writeln!(
            program,
            "{:.2} yearsInProgram(s, Y{y}), ta(c, s, q), taughtBy(c, a, q) => tempAdvisedBy(s, a)",
            0.25 - 0.02 * y as f64
        );
    }
    // Miscellaneous schema rules over the remaining relations.
    for rule in [
        "0.4 sameProject(j1, j2), projectMember(j1, s), projectMember(j2, a), professor(a) => advisedBy(s, a)",
        "0.4 sameCourse(c1, c2), ta(c1, s, q1), taughtBy(c2, a, q2) => advisedBy(s, a)",
        "1.0 samePerson(p1, p2), advisedBy(p1, a) => advisedBy(p2, a)",
        "0.3 introCourse(c), ta(c, s, q), taughtBy(c, a, q) => tempAdvisedBy(s, a)",
        "0.5 gradCourse(c), ta(c, s, q), taughtBy(c, a, q) => advisedBy(s, a)",
        "0.6 postQuals(s), publication(p, s), publication(p, a), professor(a) => advisedBy(s, a)",
        "0.7 multiplePubs(s), publication(p, s), publication(p, a), professor(a) => advisedBy(s, a)",
        "0.5 seniorStudent(s), tempAdvisedBy(s, a) => advisedBy(s, a)",
        "-0.2 juniorFaculty(a) => advisedBy(s, a)",
        "0.2 longProgram(s), publication(p, s), publication(p, a), professor(a) => advisedBy(s, a)",
        "0.3 courseLevel(c, Level500), ta(c, s, q), taughtBy(c, a, q) => advisedBy(s, a)",
    ] {
        program.push_str(rule);
        program.push('\n');
    }
    // Soft anti-co-advising: connects advisedBy atoms of different
    // students through their shared professor, making the MRF one
    // component (Table 1: LP has a single component).
    program.push_str("0.3 advisedBy(s1, a), advisedBy(s2, a) => s1 = s2\n");

    // Evidence: a single connected department.
    let mut evidence = String::new();
    let mut paper = 0usize;
    let mut course = 0usize;
    for a in 0..professors {
        let _ = writeln!(evidence, "professor(Prof{a})");
        let _ = writeln!(
            evidence,
            "hasPosition(Prof{a}, {})",
            POSITIONS[a % POSITIONS.len()]
        );
        for si in 0..students_per_prof {
            let s = a * students_per_prof + si;
            let _ = writeln!(evidence, "student(Stu{s})");
            let _ = writeln!(evidence, "inPhase(Stu{s}, {})", PHASES[s % PHASES.len()]);
            let _ = writeln!(evidence, "yearsInProgram(Stu{s}, Y{})", 1 + s % 8);
            // Publications with the "true" adviser, plus cross-prof noise
            // that keeps the whole department one component.
            let n_pubs = 1 + rng.gen_range(0..3);
            for _ in 0..n_pubs {
                let _ = writeln!(evidence, "publication(Pub{paper}, Stu{s})");
                let _ = writeln!(evidence, "publication(Pub{paper}, Prof{a})");
                paper += 1;
            }
            if rng.gen_bool(0.5) {
                let other = rng.gen_range(0..professors);
                let _ = writeln!(evidence, "publication(Pub{paper}, Stu{s})");
                let _ = writeln!(evidence, "publication(Pub{paper}, Prof{other})");
                paper += 1;
            }
            // TA a course taught by some professor.
            if rng.gen_bool(0.6) {
                let teacher = rng.gen_range(0..professors);
                let q = 1 + rng.gen_range(0..4);
                let _ = writeln!(evidence, "taughtBy(Course{course}, Prof{teacher}, Q{q})");
                let _ = writeln!(evidence, "ta(Course{course}, Stu{s}, Q{q})");
                let _ = writeln!(
                    evidence,
                    "courseLevel(Course{course}, Level{})",
                    400 + 100 * (course % 2)
                );
                course += 1;
            }
        }
    }
    crate::parse("LP", &program, &evidence)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tuffy_grounder::{ground_bottom_up, GroundingMode};
    use tuffy_mrf::ComponentSet;
    use tuffy_rdbms::OptimizerConfig;

    #[test]
    fn matches_table1_shape() {
        let d = lp(4, 3, 1);
        assert_eq!(d.program.predicates.len(), 22); // Table 1: 22 relations
        assert!(
            (60..=110).contains(&d.program.rules.len()),
            "rules = {}",
            d.program.rules.len()
        );
    }

    #[test]
    fn grounds_into_one_big_component() {
        let d = lp(4, 3, 2);
        let g = ground_bottom_up(
            &d.program,
            &d.evidence,
            GroundingMode::LazyClosure,
            &OptimizerConfig::default(),
        )
        .unwrap();
        let cs = ComponentSet::detect(&g.mrf);
        // Dominated by one large component (a few stray atoms allowed).
        let biggest = (0..cs.count())
            .map(|i| cs.atoms[i].len())
            .max()
            .unwrap_or(0);
        assert!(
            biggest * 10 >= g.mrf.num_atoms() * 8,
            "biggest component {biggest} of {}",
            g.mrf.num_atoms()
        );
    }
}
