//! The paper's Table 1, for side-by-side reporting.

/// One dataset row of Table 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Table1Row {
    /// Dataset name.
    pub name: &'static str,
    /// "#relations".
    pub relations: usize,
    /// "#rules".
    pub rules: usize,
    /// "#entities".
    pub entities: usize,
    /// "#evidence tuples".
    pub evidence_tuples: usize,
    /// "#query atoms".
    pub query_atoms: usize,
    /// "#components".
    pub components: usize,
}

/// The four rows the paper reports (Table 1).
pub fn paper_table1() -> [Table1Row; 4] {
    [
        Table1Row {
            name: "LP",
            relations: 22,
            rules: 94,
            entities: 302,
            evidence_tuples: 731,
            query_atoms: 4_600,
            components: 1,
        },
        Table1Row {
            name: "IE",
            relations: 18,
            rules: 1_000,
            entities: 2_600,
            evidence_tuples: 250_000,
            query_atoms: 340_000,
            components: 5_341,
        },
        Table1Row {
            name: "RC",
            relations: 4,
            rules: 15,
            entities: 51_000,
            evidence_tuples: 430_000,
            query_atoms: 10_000,
            components: 489,
        },
        Table1Row {
            name: "ER",
            relations: 10,
            rules: 3_800,
            entities: 510,
            evidence_tuples: 676,
            query_atoms: 16_000,
            components: 1,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_rows_with_paper_values() {
        let t = paper_table1();
        assert_eq!(t.len(), 4);
        assert_eq!(t[2].name, "RC");
        assert_eq!(t[2].rules, 15);
        assert_eq!(t[1].components, 5_341);
    }
}
