//! Property tests: generated programs parse, and evidence round-trips.

use proptest::prelude::*;
use tuffy_mln::parser::{parse_evidence, parse_program};

proptest! {
    /// Random weighted implication programs over a fixed schema parse and
    /// produce structurally sane rules.
    #[test]
    fn random_implications_parse(
        weight in -5.0f64..5.0,
        body_len in 1usize..3,
        negate_head in any::<bool>(),
    ) {
        let body: Vec<String> = (0..body_len)
            .map(|i| format!("e(x{i}, x{})", i + 1))
            .collect();
        let head = format!("{}q(x0, x{body_len})", if negate_head { "!" } else { "" });
        let src = format!("*e(t, t)\nq(t, t)\n{weight:.3} {} => {head}\n", body.join(", "));
        let p = parse_program(&src).unwrap();
        prop_assert_eq!(p.rules.len(), 1);
        let rule = &p.rules[0];
        prop_assert_eq!(rule.formula.body.len(), body_len);
        prop_assert_eq!(rule.formula.head.len(), 1);
    }

    /// Evidence lines round-trip: every asserted atom is recorded with
    /// the right polarity, and constants land in the domains.
    #[test]
    fn evidence_roundtrip(
        atoms in proptest::collection::vec((0u8..20, 0u8..20, any::<bool>()), 0..30),
    ) {
        let mut p = parse_program("*e(t, u)\n").unwrap();
        let mut src = String::new();
        let mut expected = std::collections::HashMap::new();
        for (a, b, pos) in &atoms {
            // Skip contradictions the index would reject.
            if let Some(&prev) = expected.get(&(*a, *b)) {
                if prev != *pos {
                    continue;
                }
            }
            expected.insert((*a, *b), *pos);
            src.push_str(&format!("{}e(C{a}, D{b})\n", if *pos { "" } else { "!" }));
        }
        let set = parse_evidence(&mut p, &src).unwrap();
        let e = p.predicate_by_name("e").unwrap();
        let mut seen = std::collections::HashMap::new();
        for ev in set.iter() {
            prop_assert_eq!(ev.atom.predicate, e);
            let a = p.symbols.resolve(ev.atom.args[0]).to_string();
            let b = p.symbols.resolve(ev.atom.args[1]).to_string();
            seen.insert((a, b), ev.positive);
        }
        for ((a, b), pos) in expected {
            prop_assert_eq!(seen.get(&(format!("C{a}"), format!("D{b}"))), Some(&pos));
        }
    }
}

proptest! {
    /// Print→parse round-trips preserve rule structure for random
    /// implication programs.
    #[test]
    fn print_parse_roundtrip(
        weights in proptest::collection::vec(-4.0f64..4.0, 1..6),
        negs in proptest::collection::vec(any::<bool>(), 1..6),
    ) {
        let mut src = String::from("*e(t, t)\nq(t, t)\n");
        for (w, neg) in weights.iter().zip(negs.iter()) {
            src.push_str(&format!(
                "{w:.3} e(x, y), q(y, z) => {}q(x, z)\n",
                if *neg { "!" } else { "" }
            ));
        }
        let p = tuffy_mln::parser::parse_program(&src).unwrap();
        let printed = tuffy_mln::printer::render_program(&p);
        let p2 = tuffy_mln::parser::parse_program(&printed).unwrap();
        prop_assert_eq!(p.rules.len(), p2.rules.len());
        for (a, b) in p.rules.iter().zip(p2.rules.iter()) {
            prop_assert_eq!(a.weight, b.weight);
            prop_assert_eq!(&a.formula, &b.formula);
        }
    }
}
