//! Predicate and type declarations — the σ schema of §2.2.

use crate::symbols::Symbol;
use std::fmt;

/// A dense id for a declared type (domain), e.g. `paper` or `category`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct TypeId(pub u32);

impl TypeId {
    /// Raw index of this type.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A dense id for a declared predicate, e.g. `wrote` or `cat`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct PredicateId(pub u32);

impl PredicateId {
    /// Raw index of this predicate.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A predicate declaration: name, argument types, and world assumption.
///
/// Following Tuffy's concrete syntax, a declaration prefixed with `*` is a
/// **closed-world** (evidence) predicate: any atom not asserted true in the
/// evidence is false. Undecorated predicates are **open-world** (query)
/// predicates whose unknown atoms are filled in by inference.
#[derive(Clone, Debug)]
pub struct PredicateDecl {
    /// Interned predicate name.
    pub name: Symbol,
    /// Argument types, in order; `arg_types.len()` is the arity.
    pub arg_types: Vec<TypeId>,
    /// Closed-world assumption flag (`*` prefix in the source).
    pub closed_world: bool,
}

impl PredicateDecl {
    /// The predicate's arity.
    #[inline]
    pub fn arity(&self) -> usize {
        self.arg_types.len()
    }
}

impl fmt::Display for PredicateDecl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.closed_world {
            write!(f, "*")?;
        }
        write!(f, "pred#{}(", self.name.0)?;
        for (i, t) in self.arg_types.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "type#{}", t.0)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_matches_types() {
        let d = PredicateDecl {
            name: Symbol(0),
            arg_types: vec![TypeId(0), TypeId(1)],
            closed_world: true,
        };
        assert_eq!(d.arity(), 2);
        assert!(d.closed_world);
    }
}
