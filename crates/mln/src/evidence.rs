//! Evidence as a first-class value, separate from the program.
//!
//! Figure 1 of the paper splits a Tuffy input into three parts — schema,
//! program, evidence — and the session API of the `tuffy` crate splits
//! them the same way: an [`MlnProgram`] is
//! the immutable schema + rules, an [`EvidenceSet`] is the mutable
//! database of observed ground atoms, and an [`EvidenceDelta`] is a batch
//! of edits (assert / retract / flip) applied between inference calls.
//! Keeping evidence out of the program is what lets a session ground
//! once and then serve many queries with incremental updates.

use crate::error::MlnError;
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::ground::GroundAtom;
use crate::program::MlnProgram;
use crate::symbols::Symbol;

/// A single evidence assertion: a ground atom asserted true or false.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Evidence {
    /// The asserted atom.
    pub atom: GroundAtom,
    /// `true` for positive evidence, `false` for `!atom` lines.
    pub positive: bool,
}

/// Interned lookup key of a ground atom.
fn key_of(atom: &GroundAtom) -> (u32, Box<[u32]>) {
    (atom.predicate.0, atom.args.iter().map(|s| s.0).collect())
}

fn check_arity(program: &MlnProgram, atom: &GroundAtom) -> Result<(), MlnError> {
    let decl = program.predicate(atom.predicate);
    if atom.args.len() != decl.arity() {
        return Err(MlnError::general(format!(
            "evidence for `{}` has {} arguments, expected {}",
            program.predicate_name(atom.predicate),
            atom.args.len(),
            decl.arity()
        )));
    }
    Ok(())
}

/// The evidence database: ground atoms with asserted truth values, in
/// insertion order (order is preserved so grounding — and therefore
/// inference — is deterministic for a given set).
///
/// At most one assertion is stored per atom; [`EvidenceSet::add`]
/// rejects contradictions while [`EvidenceSet::apply`] (delta semantics)
/// overwrites.
#[derive(Clone, Debug, Default)]
pub struct EvidenceSet {
    items: Vec<Evidence>,
    index: FxHashMap<(u32, Box<[u32]>), u32>,
}

impl EvidenceSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of assertions.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether no assertions are stored.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterates assertions in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Evidence> {
        self.items.iter()
    }

    /// The asserted truth of `atom`, if any.
    pub fn truth(&self, atom: &GroundAtom) -> Option<bool> {
        self.index
            .get(&key_of(atom))
            .map(|&i| self.items[i as usize].positive)
    }

    /// Adds one assertion (the bulk-load path used by the parser).
    /// Errors on arity mismatch or a contradiction with an existing
    /// assertion; re-asserting the same value is a no-op.
    pub fn add(
        &mut self,
        program: &MlnProgram,
        atom: GroundAtom,
        positive: bool,
    ) -> Result<(), MlnError> {
        check_arity(program, &atom)?;
        match self.index.get(&key_of(&atom)) {
            Some(&i) => {
                if self.items[i as usize].positive != positive {
                    return Err(MlnError::general(format!(
                        "contradictory evidence for `{}`",
                        program.predicate_name(atom.predicate)
                    )));
                }
                Ok(())
            }
            None => {
                self.index.insert(key_of(&atom), self.items.len() as u32);
                self.items.push(Evidence { atom, positive });
                Ok(())
            }
        }
    }

    /// Applies a delta, returning the *net* change per touched atom
    /// (atoms whose final truth equals their initial truth are omitted).
    /// Unlike [`EvidenceSet::add`], assertions overwrite: a delta is an
    /// edit script, not a merge.
    ///
    /// Atomic: every op is validated against a staged view first, so an
    /// error (bad arity, flip of an atom with no evidence) leaves the
    /// set completely unchanged.
    pub fn apply(
        &mut self,
        program: &MlnProgram,
        delta: &EvidenceDelta,
    ) -> Result<Vec<EvidenceChange>, MlnError> {
        // Phase 1: stage. `changes` accumulates the net (before, after)
        // per atom; `first_seen` indexes it; nothing mutates yet.
        let mut first_seen: FxHashMap<(u32, Box<[u32]>), usize> = FxHashMap::default();
        let mut changes: Vec<EvidenceChange> = Vec::new();
        for op in &delta.ops {
            let atom = match op {
                DeltaOp::Assert { atom, .. }
                | DeltaOp::Retract { atom }
                | DeltaOp::Flip { atom } => atom,
            };
            check_arity(program, atom)?;
            let key = key_of(atom);
            let staged = first_seen
                .get(&key)
                .map(|&ci| changes[ci].after)
                .unwrap_or_else(|| self.truth(atom));
            let after = match op {
                DeltaOp::Assert { positive, .. } => Some(*positive),
                DeltaOp::Retract { .. } => None,
                DeltaOp::Flip { .. } => {
                    let cur = staged.ok_or_else(|| {
                        MlnError::general(format!(
                            "cannot flip `{}`: atom has no evidence",
                            program.predicate_name(atom.predicate)
                        ))
                    })?;
                    Some(!cur)
                }
            };
            match first_seen.get(&key) {
                Some(&ci) => changes[ci].after = after,
                None => {
                    first_seen.insert(key, changes.len());
                    changes.push(EvidenceChange {
                        atom: atom.clone(),
                        before: self.truth(atom),
                        after,
                    });
                }
            }
        }
        changes.retain(|c| c.before != c.after);

        // Phase 2: commit the net changes (infallible).
        let mut retracted = false;
        for ch in &changes {
            let key = key_of(&ch.atom);
            match ch.after {
                Some(v) => match self.index.get(&key) {
                    Some(&i) => self.items[i as usize].positive = v,
                    None => {
                        self.index.insert(key, self.items.len() as u32);
                        self.items.push(Evidence {
                            atom: ch.atom.clone(),
                            positive: v,
                        });
                    }
                },
                None => {
                    self.index.remove(&key);
                    retracted = true;
                }
            }
        }
        if retracted {
            let index = std::mem::take(&mut self.index);
            let mut i = 0u32;
            self.items.retain(|e| {
                let keep = index.get(&key_of(&e.atom)) == Some(&i);
                i += 1;
                keep
            });
            self.index = self
                .items
                .iter()
                .enumerate()
                .map(|(i, e)| (key_of(&e.atom), i as u32))
                .collect();
        }
        Ok(changes)
    }

    /// Per-type constant domains of `program` extended with this set's
    /// constants — what grounding actually ranges over. Domains are
    /// sorted for determinism.
    pub fn merged_domains(&self, program: &MlnProgram) -> Vec<Vec<Symbol>> {
        let mut sets: Vec<FxHashSet<Symbol>> = program
            .domains
            .iter()
            .map(|d| d.iter().copied().collect())
            .collect();
        for ev in &self.items {
            let decl = program.predicate(ev.atom.predicate);
            for (arg, &ty) in ev.atom.args.iter().zip(decl.arg_types.iter()) {
                sets[ty.index()].insert(*arg);
            }
        }
        sets.into_iter()
            .map(|s| {
                let mut v: Vec<Symbol> = s.into_iter().collect();
                v.sort_unstable();
                v
            })
            .collect()
    }

    /// Validates every assertion's arity against the program schema.
    pub fn validate(&self, program: &MlnProgram) -> Result<(), MlnError> {
        for ev in &self.items {
            check_arity(program, &ev.atom)?;
        }
        Ok(())
    }
}

/// One edit in an [`EvidenceDelta`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeltaOp {
    /// Assert the atom true or false, overwriting any prior assertion.
    Assert {
        /// The edited atom.
        atom: GroundAtom,
        /// Asserted truth value.
        positive: bool,
    },
    /// Remove any assertion about the atom (it becomes a query atom).
    Retract {
        /// The edited atom.
        atom: GroundAtom,
    },
    /// Invert the atom's current assertion; an error if it has none.
    Flip {
        /// The edited atom.
        atom: GroundAtom,
    },
}

/// A batch of evidence edits applied between inference calls
/// ([`EvidenceSet::apply`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EvidenceDelta {
    /// The edits, applied in order.
    pub ops: Vec<DeltaOp>,
}

impl EvidenceDelta {
    /// Empty delta.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of edits.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the delta has no edits.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Appends an assert-true edit.
    pub fn assert_true(&mut self, atom: GroundAtom) -> &mut Self {
        self.ops.push(DeltaOp::Assert {
            atom,
            positive: true,
        });
        self
    }

    /// Appends an assert-false edit.
    pub fn assert_false(&mut self, atom: GroundAtom) -> &mut Self {
        self.ops.push(DeltaOp::Assert {
            atom,
            positive: false,
        });
        self
    }

    /// Appends a retract edit.
    pub fn retract(&mut self, atom: GroundAtom) -> &mut Self {
        self.ops.push(DeltaOp::Retract { atom });
        self
    }

    /// Appends a flip edit.
    pub fn flip(&mut self, atom: GroundAtom) -> &mut Self {
        self.ops.push(DeltaOp::Flip { atom });
        self
    }
}

/// The net effect of a delta on one atom: its asserted truth before and
/// after ([`None`] = no assertion, i.e. a query atom).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EvidenceChange {
    /// The edited atom.
    pub atom: GroundAtom,
    /// Asserted truth before the delta.
    pub before: Option<bool>,
    /// Asserted truth after the delta.
    pub after: Option<bool>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn program() -> MlnProgram {
        crate::parser::parse_program("*wrote(person, paper)\ncat(paper, topic)\n").unwrap()
    }

    fn atom(p: &mut MlnProgram, pred: &str, args: &[&str]) -> GroundAtom {
        let pred = p.predicate_by_name(pred).unwrap();
        let args = args.iter().map(|a| p.symbols.intern(a)).collect();
        GroundAtom::new(pred, args)
    }

    #[test]
    fn add_rejects_contradiction_and_dedups() {
        let mut p = program();
        let a = atom(&mut p, "cat", &["P1", "Db"]);
        let mut set = EvidenceSet::new();
        set.add(&p, a.clone(), true).unwrap();
        set.add(&p, a.clone(), true).unwrap(); // same value: no-op
        assert_eq!(set.len(), 1);
        assert!(set.add(&p, a.clone(), false).is_err());
        assert_eq!(set.truth(&a), Some(true));
    }

    #[test]
    fn add_rejects_bad_arity() {
        let mut p = program();
        let pred = p.predicate_by_name("wrote").unwrap();
        let joe = p.symbols.intern("Joe");
        let mut set = EvidenceSet::new();
        assert!(set.add(&p, GroundAtom::new(pred, vec![joe]), true).is_err());
    }

    #[test]
    fn apply_overwrites_retracts_and_flips() {
        let mut p = program();
        let a = atom(&mut p, "cat", &["P1", "Db"]);
        let b = atom(&mut p, "cat", &["P2", "Db"]);
        let mut set = EvidenceSet::new();
        set.add(&p, a.clone(), true).unwrap();
        set.add(&p, b.clone(), true).unwrap();

        let mut d = EvidenceDelta::new();
        d.flip(a.clone()).retract(b.clone());
        let changes = set.apply(&p, &d).unwrap();
        assert_eq!(set.truth(&a), Some(false));
        assert_eq!(set.truth(&b), None);
        assert_eq!(set.len(), 1);
        assert_eq!(changes.len(), 2);
        assert!(changes.contains(&EvidenceChange {
            atom: a.clone(),
            before: Some(true),
            after: Some(false)
        }));
        assert!(changes.contains(&EvidenceChange {
            atom: b.clone(),
            before: Some(true),
            after: None
        }));
    }

    #[test]
    fn apply_reports_net_change_only() {
        let mut p = program();
        let a = atom(&mut p, "cat", &["P1", "Db"]);
        let mut set = EvidenceSet::new();
        set.add(&p, a.clone(), true).unwrap();
        // flip then flip back: net no-op.
        let mut d = EvidenceDelta::new();
        d.flip(a.clone()).flip(a.clone());
        let changes = set.apply(&p, &d).unwrap();
        assert!(changes.is_empty());
        assert_eq!(set.truth(&a), Some(true));
    }

    #[test]
    fn retract_then_reassert_keeps_one_copy() {
        let mut p = program();
        let a = atom(&mut p, "cat", &["P1", "Db"]);
        let mut set = EvidenceSet::new();
        set.add(&p, a.clone(), true).unwrap();
        let mut d = EvidenceDelta::new();
        d.retract(a.clone()).assert_false(a.clone());
        let changes = set.apply(&p, &d).unwrap();
        assert_eq!(set.len(), 1);
        assert_eq!(set.truth(&a), Some(false));
        assert_eq!(changes.len(), 1);
        assert_eq!(changes[0].before, Some(true));
        assert_eq!(changes[0].after, Some(false));
    }

    #[test]
    fn flip_of_unknown_atom_errors() {
        let mut p = program();
        let a = atom(&mut p, "cat", &["P9", "Db"]);
        let mut set = EvidenceSet::new();
        let mut d = EvidenceDelta::new();
        d.flip(a);
        assert!(set.apply(&p, &d).is_err());
    }

    #[test]
    fn failed_apply_leaves_the_set_untouched() {
        // A later op's error must not leave earlier ops applied — a
        // half-applied delta would desynchronize a session's evidence
        // from its grounded store.
        let mut p = program();
        let a = atom(&mut p, "cat", &["P1", "Db"]);
        let b = atom(&mut p, "cat", &["P2", "Db"]);
        let ghost = atom(&mut p, "cat", &["P9", "Db"]);
        let mut set = EvidenceSet::new();
        set.add(&p, a.clone(), true).unwrap();
        let mut d = EvidenceDelta::new();
        d.assert_true(b.clone()).flip(a.clone()).flip(ghost);
        assert!(set.apply(&p, &d).is_err());
        assert_eq!(set.len(), 1);
        assert_eq!(set.truth(&a), Some(true), "flip must not have landed");
        assert_eq!(set.truth(&b), None, "assert must not have landed");
    }

    #[test]
    fn flip_sees_earlier_staged_ops() {
        // A flip after an assert in the same delta flips the staged
        // value, matching sequential semantics.
        let mut p = program();
        let a = atom(&mut p, "cat", &["P1", "Db"]);
        let mut set = EvidenceSet::new();
        let mut d = EvidenceDelta::new();
        d.assert_true(a.clone()).flip(a.clone());
        let changes = set.apply(&p, &d).unwrap();
        assert_eq!(set.truth(&a), Some(false));
        assert_eq!(changes.len(), 1);
        assert_eq!(changes[0].after, Some(false));
    }

    #[test]
    fn merged_domains_include_evidence_constants() {
        let mut p = program();
        let a = atom(&mut p, "wrote", &["Joe", "P1"]);
        let mut set = EvidenceSet::new();
        set.add(&p, a, true).unwrap();
        let domains = set.merged_domains(&p);
        let joe = p.symbols.get("Joe").unwrap();
        let p1 = p.symbols.get("P1").unwrap();
        assert_eq!(domains[0], vec![joe]);
        assert_eq!(domains[1], vec![p1]);
    }
}
