//! Conversion of rules to weighted clausal form (§2.2, footnote 3).
//!
//! Every rule `body => head` becomes the clause `¬b1 ∨ … ∨ ¬bm ∨ h1 ∨ … ∨ hn`
//! with the rule's weight. Clauses are simplified: duplicate literals are
//! removed, tautologies (a literal and its negation, or a trivially true
//! equality) are dropped entirely, and trivially false literals are deleted.

use crate::ast::{Literal, Rule, Term, Var};
use crate::program::MlnProgram;
use crate::weight::Weight;

/// A rule in clausal form: a weighted disjunction of literals.
#[derive(Clone, Debug, PartialEq)]
pub struct ClausalRule {
    /// The clause weight (every grounding of this clause gets this weight).
    pub weight: Weight,
    /// Disjuncts. Equality literals are resolved at grounding time.
    pub literals: Vec<Literal>,
    /// Existentially quantified variables (ground clauses will contain one
    /// disjunct per constant for each such variable).
    pub exists: Vec<Var>,
    /// Index of the originating rule in [`MlnProgram::rules`].
    pub rule_index: usize,
    /// Source line of the originating rule.
    pub line: usize,
}

impl ClausalRule {
    /// Universally quantified variables of the clause.
    pub fn universal_variables(&self) -> Vec<Var> {
        let mut out = Vec::new();
        for lit in &self.literals {
            for v in lit.variables() {
                if !self.exists.contains(&v) && !out.contains(&v) {
                    out.push(v);
                }
            }
        }
        out
    }
}

/// Converts every rule of `program` to clausal form, dropping rules whose
/// clause is a tautology or has zero weight.
pub fn clausify_program(program: &MlnProgram) -> Vec<ClausalRule> {
    program
        .rules
        .iter()
        .enumerate()
        .filter_map(|(i, r)| clausify_rule(r, i))
        .collect()
}

/// Converts a single rule. Returns `None` for tautologies and zero weights.
pub fn clausify_rule(rule: &Rule, rule_index: usize) -> Option<ClausalRule> {
    if rule.weight == Weight::Soft(0.0) {
        return None;
    }
    let mut literals: Vec<Literal> =
        Vec::with_capacity(rule.formula.body.len() + rule.formula.head.len());
    for lit in &rule.formula.body {
        literals.push(lit.negate());
    }
    literals.extend(rule.formula.head.iter().cloned());
    let literals = simplify(literals)?;
    Some(ClausalRule {
        weight: rule.weight,
        literals,
        exists: rule.formula.exists.clone(),
        rule_index,
        line: rule.line,
    })
}

/// Simplifies a disjunction. Returns `None` if it is a tautology.
fn simplify(literals: Vec<Literal>) -> Option<Vec<Literal>> {
    let mut out: Vec<Literal> = Vec::with_capacity(literals.len());
    for lit in literals {
        // Resolve statically decidable equalities.
        if let Literal::Eq {
            left,
            right,
            negated,
        } = &lit
        {
            match (left, right) {
                (Term::Var(a), Term::Var(b)) if a == b => {
                    if *negated {
                        continue; // x != x: trivially false literal, drop it.
                    }
                    return None; // x = x: tautology.
                }
                (Term::Const(a), Term::Const(b)) => {
                    let holds = (a == b) != *negated;
                    if holds {
                        return None; // trivially true literal: tautology.
                    }
                    continue; // trivially false: drop the literal.
                }
                _ => {}
            }
        }
        // Tautology: the complementary literal is already present.
        if out.iter().any(|l| *l == lit.negate()) {
            return None;
        }
        // Duplicate literal.
        if out.contains(&lit) {
            continue;
        }
        out.push(lit);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn clauses_of(src: &str) -> (MlnProgram, Vec<ClausalRule>) {
        let p = parse_program(src).unwrap();
        let c = clausify_program(&p);
        (p, c)
    }

    #[test]
    fn implication_becomes_clause() {
        let (_, c) = clauses_of("*e(t)\nq(t)\n1 e(x), q(x) => q(x)\n");
        // ¬e(x) ∨ ¬q(x) ∨ q(x) is a tautology: dropped.
        assert!(c.is_empty());
    }

    #[test]
    fn figure1_f2_clause_shape() {
        let (_, c) = clauses_of(
            "*wrote(a, p)\ncat(p, c)\n1 wrote(x, p1), wrote(x, p2), cat(p1, c) => cat(p2, c)\n",
        );
        assert_eq!(c.len(), 1);
        let clause = &c[0];
        assert_eq!(clause.literals.len(), 4);
        // First three literals negated (the body), last positive (the head).
        let neg: Vec<bool> = clause
            .literals
            .iter()
            .map(|l| match l {
                Literal::Pred { negated, .. } => *negated,
                _ => panic!(),
            })
            .collect();
        assert_eq!(neg, vec![true, true, true, false]);
    }

    #[test]
    fn trivially_false_equality_removed() {
        let (_, c) = clauses_of("q(t)\n1 q(x) => x != x\n");
        // Head literal x != x is trivially false and dropped; body remains.
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].literals.len(), 1);
    }

    #[test]
    fn trivially_true_equality_is_tautology() {
        let (_, c) = clauses_of("q(t)\n1 q(x) => x = x\n");
        assert!(c.is_empty());
    }

    #[test]
    fn constant_equality_resolution() {
        let (_, c) = clauses_of("q(t)\n1 q(x) => A = B\n");
        // A = B with distinct constants is false: dropped literal.
        assert_eq!(c[0].literals.len(), 1);
        let (_, c) = clauses_of("q(t)\n1 q(x) => A != B\n");
        // A != B holds: whole clause a tautology.
        assert!(c.is_empty());
    }

    #[test]
    fn duplicate_literals_deduped() {
        let (_, c) = clauses_of("q(t)\n1 q(x) v q(x)\n");
        assert_eq!(c[0].literals.len(), 1);
    }

    #[test]
    fn zero_weight_dropped() {
        let (_, c) = clauses_of("q(t)\n0 q(x)\n");
        assert!(c.is_empty());
    }

    #[test]
    fn existential_preserved() {
        let (_, c) = clauses_of("*paper(p)\n*wrote(a, p)\npaper(p) => EXIST x wrote(x, p).\n");
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].exists.len(), 1);
        assert_eq!(c[0].universal_variables().len(), 1);
        assert_eq!(c[0].weight, Weight::Hard);
    }

    #[test]
    fn universal_variables_exclude_existentials() {
        let (_, c) = clauses_of("*r(t, t)\n1 r(x, y) => EXIST z r(y, z)\n");
        let uv = c[0].universal_variables();
        assert_eq!(uv.len(), 2);
    }
}
