//! # tuffy-mln — the Markov Logic Network language
//!
//! This crate defines the input language of the Tuffy system, reproducing
//! the MLN dialect described in *Tuffy: Scaling up Statistical Inference in
//! Markov Logic Networks using an RDBMS* (Niu, Ré, Doan, Shavlik, VLDB 2011),
//! Section 2 and Appendix A.1:
//!
//! * a **schema** of typed predicates (closed-world evidence predicates and
//!   open-world query predicates),
//! * a set of **weighted first-order rules** in (or convertible to) clausal
//!   form — soft rules with finite weights (possibly negative), hard rules
//!   with weight ±∞, existential quantifiers, and variable (in)equality
//!   literals,
//! * **evidence**: ground atoms asserted true or false.
//!
//! The crate provides the data model ([`program::MlnProgram`]), a parser for
//! an Alchemy-compatible concrete syntax ([`parser`]), conversion of rules to
//! clausal form ([`clausify`]), and shared utilities (string interning in
//! [`symbols`], fast hashing in [`fxhash`]) used across the workspace.
//!
//! ## Example
//!
//! ```
//! use tuffy_mln::parser::parse_program;
//!
//! let src = r#"
//!     // paper classification (Figure 1 of the paper)
//!     *wrote(person, paper)
//!     *refers(paper, paper)
//!     cat(paper, category)
//!
//!     5    cat(p, c1), cat(p, c2) => c1 = c2
//!     1    wrote(x, p1), wrote(x, p2), cat(p1, c) => cat(p2, c)
//!     2    cat(p1, c), refers(p1, p2) => cat(p2, c)
//!     -1   cat(p, "Networking")
//! "#;
//! let program = parse_program(src).unwrap();
//! assert_eq!(program.rules.len(), 4);
//! ```

pub mod ast;
pub mod clausify;
pub mod error;
pub mod evidence;
pub mod fxhash;
pub mod ground;
pub mod parser;
pub mod printer;
pub mod program;
pub mod schema;
pub mod symbols;
pub mod weight;

pub use ast::{Atom, Formula, Literal, Rule, Term, Var};
pub use error::MlnError;
pub use evidence::{DeltaOp, Evidence, EvidenceChange, EvidenceDelta, EvidenceSet};
pub use ground::{GroundAtom, TruthValue};
pub use program::MlnProgram;
pub use schema::{PredicateDecl, PredicateId, TypeId};
pub use symbols::{Symbol, SymbolTable};
pub use weight::Weight;
