//! Error type for parsing and program validation.

use std::fmt;

/// Errors produced while parsing or validating an MLN program.
#[derive(Debug, Clone, PartialEq)]
pub struct MlnError {
    /// 1-based line where the error occurred (0 if not line-specific).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl MlnError {
    /// Creates an error pinned to a source line.
    pub fn at(line: usize, message: impl Into<String>) -> Self {
        MlnError {
            line,
            message: message.into(),
        }
    }

    /// Creates an error not tied to a specific line.
    pub fn general(message: impl Into<String>) -> Self {
        MlnError {
            line: 0,
            message: message.into(),
        }
    }
}

impl fmt::Display for MlnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "line {}: {}", self.line, self.message)
        } else {
            write!(f, "{}", self.message)
        }
    }
}

impl std::error::Error for MlnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line() {
        let e = MlnError::at(3, "bad token");
        assert_eq!(e.to_string(), "line 3: bad token");
        let g = MlnError::general("no predicates");
        assert_eq!(g.to_string(), "no predicates");
    }
}
