//! The complete MLN program: schema + rules.
//!
//! Evidence is *not* part of the program: it lives in a separate
//! [`EvidenceSet`](crate::evidence::EvidenceSet) so long-lived inference
//! sessions can update observations without touching (or re-parsing)
//! the program. See [`crate::evidence`].

use crate::ast::{Literal, Rule, Term};
use crate::error::MlnError;
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::schema::{PredicateDecl, PredicateId, TypeId};
use crate::symbols::{Symbol, SymbolTable};

pub use crate::evidence::Evidence;

/// An MLN program: the user's schema and weighted rules (Figure 1:
/// "Schema | A Markov Logic Program"). Evidence is a separate
/// [`EvidenceSet`](crate::evidence::EvidenceSet).
#[derive(Clone, Debug, Default)]
pub struct MlnProgram {
    /// Interned names (constants, predicates, types, variables).
    pub symbols: SymbolTable,
    /// Type names by [`TypeId`] index.
    pub types: Vec<Symbol>,
    /// Predicate declarations by [`PredicateId`] index.
    pub predicates: Vec<PredicateDecl>,
    /// Weighted rules.
    pub rules: Vec<Rule>,
    /// Per-type constant domains from rule constants. Grounding ranges
    /// over these merged with the evidence constants
    /// ([`crate::evidence::EvidenceSet::merged_domains`]).
    pub domains: Vec<Vec<Symbol>>,
}

impl MlnProgram {
    /// Creates an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a type name, creating the type if new.
    pub fn intern_type(&mut self, name: &str) -> TypeId {
        let sym = self.symbols.intern(name);
        if let Some(pos) = self.types.iter().position(|&t| t == sym) {
            return TypeId(pos as u32);
        }
        self.types.push(sym);
        self.domains.push(Vec::new());
        TypeId((self.types.len() - 1) as u32)
    }

    /// Declares a predicate. Errors if the name is already declared.
    pub fn declare_predicate(
        &mut self,
        name: &str,
        arg_types: Vec<TypeId>,
        closed_world: bool,
    ) -> Result<PredicateId, MlnError> {
        let sym = self.symbols.intern(name);
        if self.predicates.iter().any(|p| p.name == sym) {
            return Err(MlnError::general(format!(
                "predicate `{name}` declared twice"
            )));
        }
        self.predicates.push(PredicateDecl {
            name: sym,
            arg_types,
            closed_world,
        });
        Ok(PredicateId((self.predicates.len() - 1) as u32))
    }

    /// Looks up a predicate id by name.
    pub fn predicate_by_name(&self, name: &str) -> Option<PredicateId> {
        let sym = self.symbols.get(name)?;
        self.predicates
            .iter()
            .position(|p| p.name == sym)
            .map(|i| PredicateId(i as u32))
    }

    /// The declaration for `pred`.
    pub fn predicate(&self, pred: PredicateId) -> &PredicateDecl {
        &self.predicates[pred.index()]
    }

    /// Resolves a predicate's display name.
    pub fn predicate_name(&self, pred: PredicateId) -> &str {
        self.symbols.resolve(self.predicates[pred.index()].name)
    }

    /// Adds a constant to a type's domain if not already present.
    pub fn add_domain_constant(&mut self, ty: TypeId, constant: Symbol) {
        let dom = &mut self.domains[ty.index()];
        if !dom.contains(&constant) {
            dom.push(constant);
        }
    }

    /// Recomputes every type's constant domain from rule constants (and
    /// any constants previously added with [`Self::add_domain_constant`]).
    /// Domains are sorted for determinism.
    pub fn rebuild_domains(&mut self) {
        let mut sets: Vec<FxHashSet<Symbol>> = self
            .domains
            .iter()
            .map(|d| d.iter().copied().collect())
            .collect();
        for rule in &self.rules {
            for lit in rule.formula.body.iter().chain(rule.formula.head.iter()) {
                if let Literal::Pred { atom, .. } = lit {
                    let decl = &self.predicates[atom.predicate.index()];
                    for (term, &ty) in atom.args.iter().zip(decl.arg_types.iter()) {
                        if let Term::Const(c) = term {
                            sets[ty.index()].insert(*c);
                        }
                    }
                }
            }
        }
        self.domains = sets
            .into_iter()
            .map(|s| {
                let mut v: Vec<Symbol> = s.into_iter().collect();
                v.sort_unstable();
                v
            })
            .collect();
    }

    /// Validates rule arities and rule safety. (Evidence validates
    /// separately: [`crate::evidence::EvidenceSet::validate`].)
    ///
    /// Safety here means: every variable of a rule appears in at least one
    /// predicate literal (so the grounding queries of §3.1 can bind it).
    pub fn validate(&self) -> Result<(), MlnError> {
        for rule in &self.rules {
            let mut pred_vars: FxHashSet<crate::ast::Var> = FxHashSet::default();
            let mut all_vars: FxHashSet<crate::ast::Var> = FxHashSet::default();
            for lit in rule.formula.body.iter().chain(rule.formula.head.iter()) {
                match lit {
                    Literal::Pred { atom, .. } => {
                        let decl = &self.predicates[atom.predicate.index()];
                        if atom.args.len() != decl.arity() {
                            return Err(MlnError::at(
                                rule.line,
                                format!(
                                    "atom of `{}` has {} arguments, expected {}",
                                    self.symbols.resolve(decl.name),
                                    atom.args.len(),
                                    decl.arity()
                                ),
                            ));
                        }
                        for v in lit.variables() {
                            pred_vars.insert(v);
                            all_vars.insert(v);
                        }
                    }
                    Literal::Eq { .. } => {
                        for v in lit.variables() {
                            all_vars.insert(v);
                        }
                    }
                }
            }
            for v in &all_vars {
                if !pred_vars.contains(v) {
                    return Err(MlnError::at(
                        rule.line,
                        format!(
                            "variable `{}` appears only in (in)equality literals",
                            self.symbols.resolve(v.0)
                        ),
                    ));
                }
            }
        }
        Ok(())
    }

    /// The variable→type assignment for a rule, inferred from predicate
    /// argument positions. Errors on conflicting uses.
    pub fn rule_variable_types(
        &self,
        rule: &Rule,
    ) -> Result<FxHashMap<crate::ast::Var, TypeId>, MlnError> {
        let mut map: FxHashMap<crate::ast::Var, TypeId> = FxHashMap::default();
        for lit in rule.formula.body.iter().chain(rule.formula.head.iter()) {
            if let Literal::Pred { atom, .. } = lit {
                let decl = &self.predicates[atom.predicate.index()];
                for (term, &ty) in atom.args.iter().zip(decl.arg_types.iter()) {
                    if let Term::Var(v) = term {
                        match map.get(v) {
                            Some(&prev) if prev != ty => {
                                return Err(MlnError::at(
                                    rule.line,
                                    format!(
                                        "variable `{}` used with types `{}` and `{}`",
                                        self.symbols.resolve(v.0),
                                        self.symbols.resolve(self.types[prev.index()]),
                                        self.symbols.resolve(self.types[ty.index()]),
                                    ),
                                ));
                            }
                            _ => {
                                map.insert(*v, ty);
                            }
                        }
                    }
                }
            }
        }
        Ok(map)
    }

    /// Summary counts used by the experiment harness (Table 1). Entities
    /// count the merged program + evidence constant domains.
    pub fn stats(&self, evidence: &crate::evidence::EvidenceSet) -> ProgramStats {
        let entities: usize = evidence.merged_domains(self).iter().map(Vec::len).sum();
        ProgramStats {
            relations: self.predicates.len(),
            rules: self.rules.len(),
            entities,
            evidence_tuples: evidence.len(),
        }
    }
}

/// Static statistics of a program, matching the first rows of Table 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProgramStats {
    /// Number of declared predicates ("#relations").
    pub relations: usize,
    /// Number of rules.
    pub rules: usize,
    /// Total number of distinct constants across types ("#entities").
    pub entities: usize,
    /// Number of evidence assertions.
    pub evidence_tuples: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Formula, Var};
    use crate::weight::Weight;

    fn tiny_program() -> MlnProgram {
        let mut p = MlnProgram::new();
        let person = p.intern_type("person");
        let paper = p.intern_type("paper");
        p.declare_predicate("wrote", vec![person, paper], true)
            .unwrap();
        p.declare_predicate("good", vec![paper], false).unwrap();
        p
    }

    #[test]
    fn duplicate_predicate_rejected() {
        let mut p = tiny_program();
        let person = p.intern_type("person");
        assert!(p.declare_predicate("wrote", vec![person], true).is_err());
    }

    #[test]
    fn intern_type_is_idempotent() {
        let mut p = MlnProgram::new();
        let a = p.intern_type("paper");
        let b = p.intern_type("paper");
        assert_eq!(a, b);
        assert_eq!(p.types.len(), 1);
    }

    #[test]
    fn rule_constants_enter_domains() {
        let mut p = tiny_program();
        let good = p.predicate_by_name("good").unwrap();
        let p1 = p.symbols.intern("P1");
        p.rules.push(Rule {
            weight: Weight::Soft(1.0),
            formula: Formula {
                body: vec![],
                head: vec![Literal::pred(good, vec![Term::Const(p1)], false)],
                exists: vec![],
            },
            line: 1,
        });
        p.rebuild_domains();
        assert_eq!(p.domains[1], vec![p1]);
        assert!(p.domains[0].is_empty());
    }

    #[test]
    fn unsafe_rule_rejected() {
        let mut p = tiny_program();
        let x = Var(p.symbols.intern("x"));
        let y = Var(p.symbols.intern("y"));
        // A rule whose only literal over `y` is an equality: unsafe.
        let good = p.predicate_by_name("good").unwrap();
        p.rules.push(Rule {
            weight: Weight::Soft(1.0),
            formula: Formula {
                body: vec![Literal::pred(good, vec![Term::Var(x)], false)],
                head: vec![Literal::Eq {
                    left: Term::Var(x),
                    right: Term::Var(y),
                    negated: false,
                }],
                exists: vec![],
            },
            line: 1,
        });
        assert!(p.validate().is_err());
    }

    #[test]
    fn variable_types_inferred() {
        let mut p = tiny_program();
        let wrote = p.predicate_by_name("wrote").unwrap();
        let x = Var(p.symbols.intern("x"));
        let y = Var(p.symbols.intern("y"));
        let rule = Rule {
            weight: Weight::Soft(1.0),
            formula: Formula {
                body: vec![],
                head: vec![Literal::pred(
                    wrote,
                    vec![Term::Var(x), Term::Var(y)],
                    false,
                )],
                exists: vec![],
            },
            line: 1,
        };
        let types = p.rule_variable_types(&rule).unwrap();
        assert_eq!(types[&x], TypeId(0));
        assert_eq!(types[&y], TypeId(1));
    }
}
