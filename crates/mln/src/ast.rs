//! Abstract syntax of MLN rules.
//!
//! A rule is a weighted first-order formula (Figure 1 of the paper). The
//! parser produces [`Formula`]s in a restricted shape — an optional
//! conjunction body implying a disjunction head — which [`crate::clausify`]
//! turns into weighted clauses (disjunctions of literals, possibly with
//! existentially quantified variables and variable-(in)equality guards).

use crate::schema::PredicateId;
use crate::symbols::Symbol;
use crate::weight::Weight;
use std::fmt;

/// A variable, scoped to a single rule, identified by its interned name.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Var(pub Symbol);

/// A term: a variable or a constant.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Term {
    /// A universally (or existentially) quantified variable.
    Var(Var),
    /// An interned constant.
    Const(Symbol),
}

impl Term {
    /// Returns the variable if this term is one.
    pub fn as_var(self) -> Option<Var> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }
}

/// An atom: a predicate applied to terms, e.g. `cat(p, c1)`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Atom {
    /// The predicate.
    pub predicate: PredicateId,
    /// Argument terms; length equals the predicate's arity.
    pub args: Vec<Term>,
}

/// A literal: an atom or its negation, or a variable (in)equality guard.
#[derive(Clone, PartialEq, Debug)]
pub enum Literal {
    /// `[!]p(t1, …, tk)`.
    Pred {
        /// The underlying atom.
        atom: Atom,
        /// `true` if the literal is negated (`!p(…)`).
        negated: bool,
    },
    /// `t1 = t2` (or `t1 != t2` when `negated`). Resolved during grounding:
    /// an equality that holds makes the clause vacuously satisfied; one that
    /// fails is simply dropped from the ground clause.
    Eq {
        /// Left-hand term.
        left: Term,
        /// Right-hand term.
        right: Term,
        /// `true` for `!=`.
        negated: bool,
    },
}

impl Literal {
    /// Convenience constructor for a (possibly negated) predicate literal.
    pub fn pred(predicate: PredicateId, args: Vec<Term>, negated: bool) -> Self {
        Literal::Pred {
            atom: Atom { predicate, args },
            negated,
        }
    }

    /// The literal with its polarity flipped.
    pub fn negate(&self) -> Literal {
        match self {
            Literal::Pred { atom, negated } => Literal::Pred {
                atom: atom.clone(),
                negated: !negated,
            },
            Literal::Eq {
                left,
                right,
                negated,
            } => Literal::Eq {
                left: *left,
                right: *right,
                negated: !negated,
            },
        }
    }

    /// Iterates over all terms in the literal.
    pub fn terms(&self) -> Vec<Term> {
        match self {
            Literal::Pred { atom, .. } => atom.args.clone(),
            Literal::Eq { left, right, .. } => vec![*left, *right],
        }
    }

    /// All distinct variables in the literal, in first-occurrence order.
    pub fn variables(&self) -> Vec<Var> {
        let mut out = Vec::new();
        for t in self.terms() {
            if let Term::Var(v) = t {
                if !out.contains(&v) {
                    out.push(v);
                }
            }
        }
        out
    }
}

/// A parsed formula in implication or disjunction shape.
///
/// `body` is a conjunction of literals (empty for pure disjunctions); `head`
/// is a disjunction of literals. `exists` lists variables existentially
/// quantified in the head (`EXIST x head`), as in rule F4 of Figure 1.
#[derive(Clone, Debug, PartialEq)]
pub struct Formula {
    /// Conjunction of literals to the left of `=>` (possibly empty).
    pub body: Vec<Literal>,
    /// Disjunction of literals to the right of `=>` (or the whole formula).
    pub head: Vec<Literal>,
    /// Existentially quantified head variables.
    pub exists: Vec<Var>,
}

/// A weighted rule: a formula plus its weight.
#[derive(Clone, Debug, PartialEq)]
pub struct Rule {
    /// The rule weight (soft, hard, or negative).
    pub weight: Weight,
    /// The formula.
    pub formula: Formula,
    /// 1-based source line for diagnostics.
    pub line: usize,
}

impl Formula {
    /// All distinct variables appearing anywhere in the formula, in
    /// first-occurrence order.
    pub fn variables(&self) -> Vec<Var> {
        let mut out = Vec::new();
        for lit in self.body.iter().chain(self.head.iter()) {
            for v in lit.variables() {
                if !out.contains(&v) {
                    out.push(v);
                }
            }
        }
        out
    }

    /// Variables that are universally quantified (all variables minus the
    /// existential ones).
    pub fn universal_variables(&self) -> Vec<Var> {
        self.variables()
            .into_iter()
            .filter(|v| !self.exists.contains(v))
            .collect()
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "?{}", v.0 .0),
            Term::Const(c) => write!(f, "#{}", c.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(p: u32, vars: &[u32], negated: bool) -> Literal {
        Literal::pred(
            PredicateId(p),
            vars.iter().map(|&v| Term::Var(Var(Symbol(v)))).collect(),
            negated,
        )
    }

    #[test]
    fn variables_in_order_without_duplicates() {
        let f = Formula {
            body: vec![lit(0, &[1, 2], false), lit(0, &[2, 3], false)],
            head: vec![lit(1, &[3, 4], false)],
            exists: vec![],
        };
        let vars: Vec<u32> = f.variables().iter().map(|v| v.0 .0).collect();
        assert_eq!(vars, vec![1, 2, 3, 4]);
    }

    #[test]
    fn universal_excludes_existential() {
        let f = Formula {
            body: vec![],
            head: vec![lit(0, &[1, 2], false)],
            exists: vec![Var(Symbol(2))],
        };
        let vars: Vec<u32> = f.universal_variables().iter().map(|v| v.0 .0).collect();
        assert_eq!(vars, vec![1]);
    }

    #[test]
    fn negate_flips_polarity() {
        let l = lit(0, &[1], false);
        let n = l.negate();
        match &n {
            Literal::Pred { negated, .. } => assert!(*negated),
            _ => panic!("expected predicate literal"),
        }
        assert_eq!(n.negate(), l);
    }
}
