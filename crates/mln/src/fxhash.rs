//! A fast, non-cryptographic hasher for integer-keyed hot maps.
//!
//! The workspace's hottest hash maps are keyed by small integers (atom ids,
//! constant ids, tuples of constants). The standard library's SipHash 1-3 is
//! DoS-resistant but slow for these keys; the offline dependency set does not
//! include `rustc-hash`, so this module re-implements the same multiply-xor
//! scheme (the "Fx" hash used throughout rustc). None of the inputs hashed
//! with it are attacker-controlled.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Firefox/rustc Fx hash (64-bit golden
/// ratio approximation).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// An `FxHash`-style streaming hasher: per word, `hash = (hash.rotl(5) ^ word) * SEED`.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, BuildHasherDefault<FxHasher>>;

/// Convenience constructor mirroring `HashMap::with_capacity`.
pub fn map_with_capacity<K, V>(cap: usize) -> FxHashMap<K, V> {
    FxHashMap::with_capacity_and_hasher(cap, BuildHasherDefault::default())
}

/// Convenience constructor mirroring `HashSet::with_capacity`.
pub fn set_with_capacity<K>(cap: usize) -> FxHashSet<K> {
    FxHashSet::with_capacity_and_hasher(cap, BuildHasherDefault::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_integers_hash_distinctly() {
        let mut seen = std::collections::HashSet::new();
        for i in 0u64..10_000 {
            let mut h = FxHasher::default();
            h.write_u64(i);
            seen.insert(h.finish());
        }
        // Fx is not collision-free, but over a small dense range it is.
        assert_eq!(seen.len(), 10_000);
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u32, String> = map_with_capacity(4);
        m.insert(7, "seven".into());
        m.insert(11, "eleven".into());
        assert_eq!(m.get(&7).map(String::as_str), Some("seven"));
        assert_eq!(m.get(&11).map(String::as_str), Some("eleven"));
        assert_eq!(m.get(&13), None);
    }

    #[test]
    fn byte_stream_equivalent_chunking() {
        // Hashing the same bytes must yield the same value regardless of
        // how the caller splits `write` calls at 8-byte boundaries.
        let bytes: Vec<u8> = (0u8..32).collect();
        let mut a = FxHasher::default();
        a.write(&bytes);
        let mut b = FxHasher::default();
        b.write(&bytes[..16]);
        b.write(&bytes[16..]);
        assert_eq!(a.finish(), b.finish());
    }
}
