//! Ground atoms and truth values.

use crate::schema::PredicateId;
use crate::symbols::Symbol;
use std::fmt;

/// A ground atom: a predicate applied to constants only.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct GroundAtom {
    /// The predicate.
    pub predicate: PredicateId,
    /// Constant arguments (interned).
    pub args: Vec<Symbol>,
}

impl GroundAtom {
    /// Constructs a ground atom.
    pub fn new(predicate: PredicateId, args: Vec<Symbol>) -> Self {
        GroundAtom { predicate, args }
    }
}

/// The three-valued `truth` attribute of Tuffy's atom relations
/// `R_P(aid, args, truth)` (§3.1): known-true or known-false from evidence,
/// or unknown (to be decided by inference).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum TruthValue {
    /// Asserted true in the evidence.
    True,
    /// Asserted false in the evidence.
    False,
    /// Not specified in the evidence.
    Unknown,
}

impl TruthValue {
    /// Encodes the truth value as a column value for the RDBMS layer.
    #[inline]
    pub fn encode(self) -> u32 {
        match self {
            TruthValue::False => 0,
            TruthValue::True => 1,
            TruthValue::Unknown => 2,
        }
    }

    /// Decodes a column value produced by [`TruthValue::encode`].
    #[inline]
    pub fn decode(v: u32) -> TruthValue {
        match v {
            0 => TruthValue::False,
            1 => TruthValue::True,
            _ => TruthValue::Unknown,
        }
    }
}

impl fmt::Display for TruthValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TruthValue::True => write!(f, "true"),
            TruthValue::False => write!(f, "false"),
            TruthValue::Unknown => write!(f, "unknown"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truth_value_encoding_roundtrip() {
        for t in [TruthValue::True, TruthValue::False, TruthValue::Unknown] {
            assert_eq!(TruthValue::decode(t.encode()), t);
        }
    }

    #[test]
    fn ground_atom_equality() {
        let a = GroundAtom::new(PredicateId(0), vec![Symbol(1), Symbol(2)]);
        let b = GroundAtom::new(PredicateId(0), vec![Symbol(1), Symbol(2)]);
        let c = GroundAtom::new(PredicateId(0), vec![Symbol(2), Symbol(1)]);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
