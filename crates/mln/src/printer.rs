//! Rendering programs back to concrete syntax.
//!
//! The printer emits exactly the dialect [`crate::parser`] accepts, so
//! `parse(print(p))` reproduces `p` up to the canonicalizations the
//! parser itself performs (head-conjunction distribution, bi-implication
//! expansion). Used for program inspection, dataset export, and the
//! round-trip property tests.

use crate::ast::{Literal, Rule, Term};
use crate::program::MlnProgram;
use crate::weight::Weight;
use std::fmt::Write;

/// Renders a constant, quoting when it would not re-parse as a constant
/// identifier.
fn render_constant(name: &str) -> String {
    let plain_const = name
        .chars()
        .next()
        .is_some_and(|c| c.is_ascii_uppercase() || c.is_ascii_digit())
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.');
    if plain_const {
        name.to_string()
    } else {
        format!("\"{name}\"")
    }
}

/// Renders a term in rule position.
fn render_term(program: &MlnProgram, t: Term) -> String {
    match t {
        Term::Var(v) => program.symbols.resolve(v.0).to_string(),
        Term::Const(c) => render_constant(program.symbols.resolve(c)),
    }
}

/// Renders a single literal.
pub fn render_literal(program: &MlnProgram, lit: &Literal) -> String {
    match lit {
        Literal::Pred { atom, negated } => {
            let args: Vec<String> = atom.args.iter().map(|&t| render_term(program, t)).collect();
            format!(
                "{}{}({})",
                if *negated { "!" } else { "" },
                program.predicate_name(atom.predicate),
                args.join(", ")
            )
        }
        Literal::Eq {
            left,
            right,
            negated,
        } => format!(
            "{} {} {}",
            render_term(program, *left),
            if *negated { "!=" } else { "=" },
            render_term(program, *right)
        ),
    }
}

/// Renders one rule line.
pub fn render_rule(program: &MlnProgram, rule: &Rule) -> String {
    let mut out = String::new();
    let hard = rule.weight == Weight::Hard;
    if !hard {
        let _ = write!(out, "{} ", rule.weight);
    }
    let body: Vec<String> = rule
        .formula
        .body
        .iter()
        .map(|l| render_literal(program, l))
        .collect();
    if !body.is_empty() {
        out.push_str(&body.join(", "));
        out.push_str(" => ");
    }
    if !rule.formula.exists.is_empty() {
        out.push_str("EXIST ");
        let vars: Vec<&str> = rule
            .formula
            .exists
            .iter()
            .map(|v| program.symbols.resolve(v.0))
            .collect();
        out.push_str(&vars.join(", "));
        out.push(' ');
    }
    let head: Vec<String> = rule
        .formula
        .head
        .iter()
        .map(|l| render_literal(program, l))
        .collect();
    out.push_str(&head.join(" v "));
    if hard {
        out.push('.');
    }
    out
}

/// Renders the full program (declarations + rules) in parseable form.
pub fn render_program(program: &MlnProgram) -> String {
    let mut out = String::new();
    for decl in &program.predicates {
        if decl.closed_world {
            out.push('*');
        }
        let types: Vec<&str> = decl
            .arg_types
            .iter()
            .map(|t| program.symbols.resolve(program.types[t.index()]))
            .collect();
        let _ = writeln!(
            out,
            "{}({})",
            program.symbols.resolve(decl.name),
            types.join(", ")
        );
    }
    for rule in &program.rules {
        out.push_str(&render_rule(program, rule));
        out.push('\n');
    }
    out
}

/// Renders an evidence set in parseable form.
pub fn render_evidence(program: &MlnProgram, evidence: &crate::evidence::EvidenceSet) -> String {
    let mut out = String::new();
    for ev in evidence.iter() {
        let args: Vec<String> = ev
            .atom
            .args
            .iter()
            .map(|&s| render_constant(program.symbols.resolve(s)))
            .collect();
        let _ = writeln!(
            out,
            "{}{}({})",
            if ev.positive { "" } else { "!" },
            program.predicate_name(ev.atom.predicate),
            args.join(", ")
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_evidence, parse_program};

    const FIGURE1: &str = r#"
        *paper(paperid, url)
        *wrote(author, paperid)
        *refers(paperid, paperid)
        cat(paperid, category)
        5 cat(p, c1), cat(p, c2) => c1 = c2
        1 wrote(x, p1), wrote(x, p2), cat(p1, c) => cat(p2, c)
        2 cat(p1, c), refers(p1, p2) => cat(p2, c)
        paper(p, u) => EXIST x wrote(x, p).
        -1 cat(p, "Networking")
    "#;

    #[test]
    fn print_parse_roundtrip_preserves_structure() {
        let mut p = parse_program(FIGURE1).unwrap();
        let ev = parse_evidence(&mut p, "wrote(Joe, P1)\n!cat(P1, \"Networking\")\n").unwrap();
        let printed = render_program(&p);
        let evidence = render_evidence(&p, &ev);
        let mut p2 = parse_program(&printed).unwrap();
        let ev2 = parse_evidence(&mut p2, &evidence).unwrap();
        assert_eq!(p.predicates.len(), p2.predicates.len());
        assert_eq!(p.rules.len(), p2.rules.len());
        assert_eq!(ev.len(), ev2.len());
        for (a, b) in p.rules.iter().zip(p2.rules.iter()) {
            assert_eq!(a.weight, b.weight);
            assert_eq!(a.formula.body.len(), b.formula.body.len());
            assert_eq!(a.formula.head.len(), b.formula.head.len());
            assert_eq!(a.formula.exists.len(), b.formula.exists.len());
        }
    }

    #[test]
    fn quoted_constants_requoted() {
        let p = parse_program("*e(t)\n1 e(\"New York\")\n").unwrap();
        let printed = render_program(&p);
        assert!(printed.contains("\"New York\""), "{printed}");
        assert!(parse_program(&printed).is_ok());
    }

    #[test]
    fn hard_rules_get_periods() {
        let p = parse_program("q(t)\nq(A).\n").unwrap();
        let printed = render_program(&p);
        assert!(printed.trim_end().ends_with("q(A)."), "{printed}");
    }
}
