//! Parser for the Alchemy-compatible concrete syntax of Tuffy programs.
//!
//! The input format mirrors the one shown in Figure 1 of the paper and the
//! Alchemy input language:
//!
//! ```text
//! // Predicate declarations. A `*` prefix marks a closed-world (evidence)
//! // predicate; undecorated predicates are open-world query predicates.
//! *wrote(person, paper)
//! *refers(paper, paper)
//! cat(paper, category)
//!
//! // Rules: `<weight> <formula>` for soft rules (weights may be negative),
//! // `<formula>.` for hard rules (weight +infinity).
//! 5    cat(p, c1), cat(p, c2) => c1 = c2
//! 1    wrote(x, p1), wrote(x, p2), cat(p1, c) => cat(p2, c)
//! 2    cat(p1, c), refers(p1, p2) => cat(p2, c)
//! paper(p, u) => EXIST x wrote(x, p).
//! -1   cat(p, "Networking")
//! ```
//!
//! Identifier convention (as in Alchemy): lowercase identifiers are
//! variables, capitalized identifiers / numbers / quoted strings are
//! constants. Comments start with `//` or `#`. Disjunction is written `v`
//! or `|`; conjunction is `,`; implication `=>`; bi-implication `<=>`;
//! negation `!`; existential quantification `EXIST x, y <literals>`.
//!
//! Evidence files contain one ground atom per line, optionally negated:
//!
//! ```text
//! wrote(Joe, P1)
//! !cat(P3, "Networking")
//! ```

use crate::ast::{Formula, Literal, Rule, Term, Var};
use crate::error::MlnError;
use crate::evidence::{EvidenceDelta, EvidenceSet};
use crate::ground::GroundAtom;
use crate::program::MlnProgram;
use crate::schema::PredicateId;
use crate::weight::Weight;

/// Tokens of the concrete syntax.
#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Ident(String),
    Number(String),
    Str(String),
    LParen,
    RParen,
    Comma,
    Bang,
    Star,
    Period,
    Implies,
    Iff,
    Or,
    Eq,
    Neq,
}

/// Splits `src` into logical lines with comments stripped, keeping 1-based
/// line numbers.
fn logical_lines(src: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for (i, raw) in src.lines().enumerate() {
        let mut line = raw;
        if let Some(pos) = find_comment(line) {
            line = &line[..pos];
        }
        let trimmed = line.trim();
        if !trimmed.is_empty() {
            out.push((i + 1, trimmed.to_string()));
        }
    }
    out
}

/// Finds the start of a `//` or `#` comment outside quotes.
fn find_comment(line: &str) -> Option<usize> {
    let bytes = line.as_bytes();
    let mut quote: Option<u8> = None;
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        match quote {
            Some(q) => {
                if b == q {
                    quote = None;
                }
            }
            None => {
                if b == b'"' || b == b'\'' {
                    quote = Some(b);
                } else if b == b'#' || (b == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'/') {
                    return Some(i);
                }
            }
        }
        i += 1;
    }
    None
}

/// Tokenizes one logical line.
fn tokenize(line: &str, lineno: usize) -> Result<Vec<Tok>, MlnError> {
    let mut toks = Vec::new();
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b' ' | b'\t' => i += 1,
            b'(' => {
                toks.push(Tok::LParen);
                i += 1;
            }
            b')' => {
                toks.push(Tok::RParen);
                i += 1;
            }
            b',' => {
                toks.push(Tok::Comma);
                i += 1;
            }
            b'*' => {
                toks.push(Tok::Star);
                i += 1;
            }
            b'.' => {
                // A period is a hard-rule terminator unless part of a number
                // (handled in the number branch below).
                toks.push(Tok::Period);
                i += 1;
            }
            b'|' => {
                toks.push(Tok::Or);
                i += 1;
            }
            b'!' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    toks.push(Tok::Neq);
                    i += 2;
                } else {
                    toks.push(Tok::Bang);
                    i += 1;
                }
            }
            b'=' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    toks.push(Tok::Implies);
                    i += 2;
                } else {
                    toks.push(Tok::Eq);
                    i += 1;
                }
            }
            b'<' => {
                if line[i..].starts_with("<=>") {
                    toks.push(Tok::Iff);
                    i += 3;
                } else {
                    return Err(MlnError::at(lineno, "unexpected `<`"));
                }
            }
            b'"' | b'\'' => {
                let quote = b;
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != quote {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(MlnError::at(lineno, "unterminated string literal"));
                }
                toks.push(Tok::Str(line[start..j].to_string()));
                i = j + 1;
            }
            b'-' | b'+' | b'0'..=b'9' => {
                let start = i;
                i += 1;
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit()
                        || bytes[i] == b'.'
                        || bytes[i] == b'e'
                        || bytes[i] == b'E'
                        || ((bytes[i] == b'-' || bytes[i] == b'+')
                            && (bytes[i - 1] == b'e' || bytes[i - 1] == b'E')))
                {
                    i += 1;
                }
                let text = &line[start..i];
                // `-inf` / `+inf` weights.
                if (text == "-" || text == "+") && line[i..].starts_with("inf") {
                    let sign = text.to_string();
                    i += 3;
                    toks.push(Tok::Number(format!("{sign}inf")));
                } else {
                    // Trim a trailing period: `5.` is weight 5 then hard-rule
                    // marker only when followed by nothing; simpler to treat
                    // `5.` as the float 5.0 (valid f64 parse).
                    toks.push(Tok::Number(text.to_string()));
                }
            }
            _ if b.is_ascii_alphabetic() || b == b'_' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'\'')
                {
                    i += 1;
                }
                let word = &line[start..i];
                match word {
                    // NOTE: `v` (disjunction) is NOT special-cased here —
                    // it is a valid variable name inside an atom. The
                    // literal-list parser recognizes `Ident("v")` in
                    // separator position.
                    "inf" | "infinity" => toks.push(Tok::Number("inf".into())),
                    _ => toks.push(Tok::Ident(word.to_string())),
                }
            }
            _ => {
                return Err(MlnError::at(
                    lineno,
                    format!("unexpected character `{}`", b as char),
                ));
            }
        }
    }
    Ok(toks)
}

/// A cursor over a token list.
struct Cursor<'a> {
    toks: &'a [Tok],
    pos: usize,
    line: usize,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok, what: &str) -> Result<(), MlnError> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(MlnError::at(
                self.line,
                format!("expected {what}, found {:?}", self.peek()),
            ))
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }
}

/// Is this identifier a variable (lowercase first letter) under the Alchemy
/// convention?
fn is_variable_name(name: &str) -> bool {
    name.chars().next().is_some_and(|c| c.is_ascii_lowercase())
}

/// Parses a full program (declarations + rules) from source text.
pub fn parse_program(src: &str) -> Result<MlnProgram, MlnError> {
    let mut program = MlnProgram::new();
    for (lineno, line) in logical_lines(src) {
        let toks = tokenize(&line, lineno)?;
        if toks.is_empty() {
            continue;
        }
        if is_declaration(&toks) {
            parse_declaration(&mut program, &toks, lineno)?;
        } else {
            parse_rule_line(&mut program, &toks, lineno)?;
        }
    }
    program.rebuild_domains();
    program.validate()?;
    Ok(program)
}

/// Parses evidence text against a program's schema into a fresh
/// [`EvidenceSet`].
///
/// The program is only touched to intern constant names into its symbol
/// table; evidence (and the constants' contribution to grounding
/// domains) lives entirely in the returned set.
pub fn parse_evidence(program: &mut MlnProgram, src: &str) -> Result<EvidenceSet, MlnError> {
    let mut set = EvidenceSet::new();
    parse_evidence_into(program, &mut set, src)?;
    Ok(set)
}

/// Parses evidence text into an existing [`EvidenceSet`] (the bulk-load
/// path for evidence spread over multiple files).
pub fn parse_evidence_into(
    program: &mut MlnProgram,
    set: &mut EvidenceSet,
    src: &str,
) -> Result<(), MlnError> {
    for (lineno, line) in logical_lines(src) {
        let toks = tokenize(&line, lineno)?;
        if toks.is_empty() {
            continue;
        }
        let mut cur = Cursor {
            toks: &toks,
            pos: 0,
            line: lineno,
        };
        let positive = !cur.eat(&Tok::Bang);
        let (pred, args) = parse_ground_atom(program, &mut cur)?;
        if !cur.at_end() {
            return Err(MlnError::at(lineno, "trailing tokens after evidence atom"));
        }
        set.add(program, GroundAtom::new(pred, args), positive)
            .map_err(|e| MlnError::at(lineno, e.to_string()))?;
    }
    Ok(())
}

/// Parses an evidence *delta*: one edit per line, where a leading `+` or
/// no marker asserts the atom true, `!` asserts it false, `-` retracts
/// any assertion, and `~` flips the current assertion.
///
/// ```text
/// cat(P4, DB)      // assert true
/// !cat(P5, AI)     // assert false
/// -cat(P2, DB)     // retract
/// ~wrote(Joe, P1)  // flip
/// ```
pub fn parse_delta(program: &mut MlnProgram, src: &str) -> Result<EvidenceDelta, MlnError> {
    let mut delta = EvidenceDelta::new();
    for (lineno, line) in logical_lines(src) {
        let (op, rest) = match line.as_bytes().first() {
            Some(b'+') => ('+', &line[1..]),
            Some(b'-') => ('-', &line[1..]),
            Some(b'~') => ('~', &line[1..]),
            _ => ('+', line.as_str()),
        };
        let toks = tokenize(rest, lineno)?;
        if toks.is_empty() {
            continue;
        }
        let mut cur = Cursor {
            toks: &toks,
            pos: 0,
            line: lineno,
        };
        let positive = !cur.eat(&Tok::Bang);
        let (pred, args) = parse_ground_atom(program, &mut cur)?;
        if !cur.at_end() {
            return Err(MlnError::at(lineno, "trailing tokens after delta atom"));
        }
        let atom = GroundAtom::new(pred, args);
        match (op, positive) {
            ('-', true) => delta.retract(atom),
            ('~', true) => delta.flip(atom),
            ('-', false) | ('~', false) => {
                return Err(MlnError::at(lineno, "`-`/`~` cannot combine with `!`"))
            }
            (_, true) => delta.assert_true(atom),
            (_, false) => delta.assert_false(atom),
        };
    }
    Ok(delta)
}

/// A declaration is `[*] name ( ident (, ident)* )` and nothing else.
fn is_declaration(toks: &[Tok]) -> bool {
    let mut i = 0;
    if toks.get(i) == Some(&Tok::Star) {
        i += 1;
    }
    if !matches!(toks.get(i), Some(Tok::Ident(_))) {
        return false;
    }
    i += 1;
    if toks.get(i) != Some(&Tok::LParen) {
        return false;
    }
    i += 1;
    loop {
        if !matches!(toks.get(i), Some(Tok::Ident(_))) {
            return false;
        }
        i += 1;
        match toks.get(i) {
            Some(Tok::Comma) => i += 1,
            Some(Tok::RParen) => {
                i += 1;
                return i == toks.len();
            }
            _ => return false,
        }
    }
}

fn parse_declaration(
    program: &mut MlnProgram,
    toks: &[Tok],
    lineno: usize,
) -> Result<(), MlnError> {
    let mut cur = Cursor {
        toks,
        pos: 0,
        line: lineno,
    };
    let closed = cur.eat(&Tok::Star);
    let name = match cur.next() {
        Some(Tok::Ident(n)) => n,
        other => {
            return Err(MlnError::at(
                lineno,
                format!("expected name, got {other:?}"),
            ))
        }
    };
    cur.expect(&Tok::LParen, "`(`")?;
    let mut types = Vec::new();
    loop {
        match cur.next() {
            Some(Tok::Ident(t)) => {
                let t = t.clone();
                types.push(program.intern_type(&t));
            }
            other => {
                return Err(MlnError::at(
                    lineno,
                    format!("expected type, got {other:?}"),
                ))
            }
        }
        if cur.eat(&Tok::RParen) {
            break;
        }
        cur.expect(&Tok::Comma, "`,`")?;
    }
    program
        .declare_predicate(&name, types, closed)
        .map_err(|e| MlnError::at(lineno, e.message))?;
    Ok(())
}

/// Parses one rule line, appending one or more canonical-form [`Rule`]s
/// (head conjunctions and bi-implications expand to several rules).
fn parse_rule_line(program: &mut MlnProgram, toks: &[Tok], lineno: usize) -> Result<(), MlnError> {
    let mut cur = Cursor {
        toks,
        pos: 0,
        line: lineno,
    };
    // Weight prefix, if any.
    let explicit_weight = match cur.peek() {
        Some(Tok::Number(n)) => {
            let n = n.clone();
            cur.pos += 1;
            Some(
                Weight::parse(&n)
                    .ok_or_else(|| MlnError::at(lineno, format!("bad weight `{n}`")))?,
            )
        }
        _ => None,
    };
    // Hard-rule terminator: a trailing Period token.
    let mut end = toks.len();
    let hard = toks.last() == Some(&Tok::Period);
    if hard {
        end -= 1;
    }
    let weight = match (explicit_weight, hard) {
        (Some(_), true) => {
            return Err(MlnError::at(
                lineno,
                "rule has both a weight and a hard-rule period",
            ));
        }
        (Some(w), false) => w,
        (None, true) => Weight::Hard,
        (None, false) => {
            return Err(MlnError::at(
                lineno,
                "rule needs a weight or a trailing `.` (hard rule)",
            ));
        }
    };

    let body_toks;
    let head_toks;
    let mut iff = false;
    if let Some(split) = toks[..end]
        .iter()
        .position(|t| matches!(t, Tok::Implies | Tok::Iff))
    {
        iff = toks[split] == Tok::Iff;
        body_toks = &toks[cur.pos..split];
        head_toks = &toks[split + 1..end];
    } else {
        body_toks = &toks[0..0];
        head_toks = &toks[cur.pos..end];
    }

    let (body_lits, body_sep) = parse_literal_list(program, body_toks, lineno, &mut Vec::new())?;
    let mut exists = Vec::new();
    let (head_lits, head_sep) = parse_literal_list(program, head_toks, lineno, &mut exists)?;

    if iff {
        if !exists.is_empty() {
            return Err(MlnError::at(lineno, "EXIST not supported with `<=>`"));
        }
        if body_sep == Sep::Conj && head_sep == Sep::Conj {
            return Err(MlnError::at(
                lineno,
                "`<=>` requires disjunctive sides in this dialect",
            ));
        }
        // a <=> b expands to (a => b) and (b => a).
        push_implication(
            program,
            weight,
            body_lits.clone(),
            head_lits.clone(),
            lineno,
        );
        push_implication(program, weight, head_lits, body_lits, lineno);
        return Ok(());
    }

    if body_toks.is_empty() {
        // Pure formula (no implication).
        match head_sep {
            Sep::Disj | Sep::Single => {
                program.rules.push(Rule {
                    weight,
                    formula: Formula {
                        body: vec![],
                        head: head_lits,
                        exists,
                    },
                    line: lineno,
                });
            }
            Sep::Conj => {
                // A weighted conjunction is shorthand for one unit clause
                // per conjunct, each carrying the full weight.
                for lit in head_lits {
                    program.rules.push(Rule {
                        weight,
                        formula: Formula {
                            body: vec![],
                            head: vec![lit],
                            exists: exists.clone(),
                        },
                        line: lineno,
                    });
                }
            }
        }
        return Ok(());
    }

    if body_sep == Sep::Disj {
        // (a v b) => c distributes into (a => c), (b => c).
        for lit in body_lits {
            push_head(
                program,
                weight,
                vec![lit],
                head_lits.clone(),
                head_sep,
                exists.clone(),
                lineno,
            );
        }
    } else {
        push_head(
            program, weight, body_lits, head_lits, head_sep, exists, lineno,
        );
    }
    Ok(())
}

/// Appends `body => head` rules, distributing conjunctive heads.
fn push_head(
    program: &mut MlnProgram,
    weight: Weight,
    body: Vec<Literal>,
    head: Vec<Literal>,
    head_sep: Sep,
    exists: Vec<Var>,
    line: usize,
) {
    match head_sep {
        Sep::Disj | Sep::Single => program.rules.push(Rule {
            weight,
            formula: Formula { body, head, exists },
            line,
        }),
        Sep::Conj => {
            for lit in head {
                program.rules.push(Rule {
                    weight,
                    formula: Formula {
                        body: body.clone(),
                        head: vec![lit],
                        exists: exists.clone(),
                    },
                    line,
                });
            }
        }
    }
}

fn push_implication(
    program: &mut MlnProgram,
    weight: Weight,
    body: Vec<Literal>,
    head: Vec<Literal>,
    line: usize,
) {
    program.rules.push(Rule {
        weight,
        formula: Formula {
            body,
            head,
            exists: vec![],
        },
        line,
    });
}

/// How a literal list was separated.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Sep {
    Single,
    Conj,
    Disj,
}

/// Parses a `,`- or `v`-separated list of literals. An `EXIST x, y …`
/// prefix adds to `exists` and scopes over the remainder of the list.
fn parse_literal_list(
    program: &mut MlnProgram,
    toks: &[Tok],
    lineno: usize,
    exists: &mut Vec<Var>,
) -> Result<(Vec<Literal>, Sep), MlnError> {
    if toks.is_empty() {
        return Ok((vec![], Sep::Single));
    }
    let mut cur = Cursor {
        toks,
        pos: 0,
        line: lineno,
    };
    // EXIST prefix.
    if matches!(cur.peek(), Some(Tok::Ident(w)) if w == "EXIST" || w == "Exist" || w == "exist") {
        cur.pos += 1;
        loop {
            match cur.next() {
                Some(Tok::Ident(name)) if is_variable_name(&name) => {
                    let name = name.clone();
                    exists.push(Var(program.symbols.intern(&name)));
                }
                other => {
                    return Err(MlnError::at(
                        lineno,
                        format!("expected existential variable, got {other:?}"),
                    ));
                }
            }
            if !cur.eat(&Tok::Comma) {
                break;
            }
            // Lookahead: `EXIST x, y p(x,y)` — a comma followed by an ident
            // then `(` starts the literal list rather than another variable.
            if matches!(cur.peek(), Some(Tok::Ident(_)))
                && cur.toks.get(cur.pos + 1) == Some(&Tok::LParen)
            {
                break;
            }
        }
    }

    let mut lits = Vec::new();
    let mut sep = Sep::Single;
    loop {
        lits.push(parse_literal(program, &mut cur)?);
        if cur.at_end() {
            break;
        }
        let this = match cur.next() {
            Some(Tok::Comma) => Sep::Conj,
            Some(Tok::Or) => Sep::Disj,
            Some(Tok::Ident(w)) if w == "v" => Sep::Disj,
            other => {
                return Err(MlnError::at(
                    lineno,
                    format!("expected `,` or `v`, got {other:?}"),
                ));
            }
        };
        if sep == Sep::Single {
            sep = this;
        } else if sep != this {
            return Err(MlnError::at(
                lineno,
                "cannot mix `,` and `v` within one side of a rule",
            ));
        }
    }
    Ok((lits, sep))
}

/// Parses one literal: `[!]pred(t, …)`, or `t = t` / `t != t`.
fn parse_literal(program: &mut MlnProgram, cur: &mut Cursor<'_>) -> Result<Literal, MlnError> {
    let negated = cur.eat(&Tok::Bang);
    // Try a predicate literal: Ident `(`.
    if matches!(cur.peek(), Some(Tok::Ident(_))) && cur.toks.get(cur.pos + 1) == Some(&Tok::LParen)
    {
        let name = match cur.next() {
            Some(Tok::Ident(n)) => n,
            _ => unreachable!(),
        };
        let pred = program
            .predicate_by_name(&name)
            .ok_or_else(|| MlnError::at(cur.line, format!("unknown predicate `{name}`")))?;
        cur.expect(&Tok::LParen, "`(`")?;
        let mut args = Vec::new();
        loop {
            args.push(parse_term(program, cur)?);
            if cur.eat(&Tok::RParen) {
                break;
            }
            cur.expect(&Tok::Comma, "`,`")?;
        }
        return Ok(Literal::pred(pred, args, negated));
    }
    // Otherwise an (in)equality between terms.
    let left = parse_term(program, cur)?;
    let eq_negated = match cur.next() {
        Some(Tok::Eq) => false,
        Some(Tok::Neq) => true,
        other => {
            return Err(MlnError::at(
                cur.line,
                format!("expected literal, got {other:?}"),
            ));
        }
    };
    let right = parse_term(program, cur)?;
    if negated {
        return Err(MlnError::at(
            cur.line,
            "use `!=` instead of negating an equality",
        ));
    }
    Ok(Literal::Eq {
        left,
        right,
        negated: eq_negated,
    })
}

/// Parses a term: variable, constant identifier, number, or quoted string.
fn parse_term(program: &mut MlnProgram, cur: &mut Cursor<'_>) -> Result<Term, MlnError> {
    match cur.next() {
        Some(Tok::Ident(name)) => {
            let name = name.clone();
            if is_variable_name(&name) {
                Ok(Term::Var(Var(program.symbols.intern(&name))))
            } else {
                Ok(Term::Const(program.symbols.intern(&name)))
            }
        }
        Some(Tok::Number(n)) => {
            let n = n.clone();
            Ok(Term::Const(program.symbols.intern(&n)))
        }
        Some(Tok::Str(s)) => {
            let s = s.clone();
            Ok(Term::Const(program.symbols.intern(&s)))
        }
        other => Err(MlnError::at(
            cur.line,
            format!("expected term, got {other:?}"),
        )),
    }
}

/// Parses a ground atom for evidence: `pred(c1, …, ck)` with constant args.
fn parse_ground_atom(
    program: &mut MlnProgram,
    cur: &mut Cursor<'_>,
) -> Result<(PredicateId, Vec<crate::symbols::Symbol>), MlnError> {
    let name = match cur.next() {
        Some(Tok::Ident(n)) => n,
        other => {
            return Err(MlnError::at(
                cur.line,
                format!("expected predicate, got {other:?}"),
            ));
        }
    };
    let pred = program
        .predicate_by_name(&name)
        .ok_or_else(|| MlnError::at(cur.line, format!("unknown predicate `{name}`")))?;
    cur.expect(&Tok::LParen, "`(`")?;
    let mut args = Vec::new();
    loop {
        match cur.next() {
            Some(Tok::Ident(n)) => {
                let n = n.clone();
                args.push(program.symbols.intern(&n));
            }
            Some(Tok::Number(n)) => {
                let n = n.clone();
                args.push(program.symbols.intern(&n));
            }
            Some(Tok::Str(s)) => {
                let s = s.clone();
                args.push(program.symbols.intern(&s));
            }
            other => {
                return Err(MlnError::at(
                    cur.line,
                    format!("expected constant, got {other:?}"),
                ));
            }
        }
        if cur.eat(&Tok::RParen) {
            break;
        }
        cur.expect(&Tok::Comma, "`,`")?;
    }
    Ok((pred, args))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Literal;

    const FIGURE1: &str = r#"
        // Figure 1 of the paper.
        *paper(paperid, url)
        *wrote(author, paperid)
        *refers(paperid, paperid)
        cat(paperid, category)

        5  cat(p, c1), cat(p, c2) => c1 = c2
        1  wrote(x, p1), wrote(x, p2), cat(p1, c) => cat(p2, c)
        2  cat(p1, c), refers(p1, p2) => cat(p2, c)
        paper(p, u) => EXIST x wrote(x, p).
        -1 cat(p, "Networking")
    "#;

    #[test]
    fn parses_figure_1() {
        let p = parse_program(FIGURE1).unwrap();
        assert_eq!(p.predicates.len(), 4);
        assert_eq!(p.rules.len(), 5);
        assert!(p.predicates[0].closed_world);
        assert!(!p.predicates[3].closed_world);
        // F4 is hard with an existential head.
        let f4 = &p.rules[3];
        assert_eq!(f4.weight, Weight::Hard);
        assert_eq!(f4.formula.exists.len(), 1);
        // F5 has a negative weight and a constant argument.
        let f5 = &p.rules[4];
        assert_eq!(f5.weight, Weight::Soft(-1.0));
    }

    #[test]
    fn evidence_parsing() {
        let mut p = parse_program(FIGURE1).unwrap();
        let ev = parse_evidence(
            &mut p,
            r#"
                wrote(Joe, P1)
                wrote(Joe, P2)
                wrote(Jake, P3)
                refers(P1, P3)
                cat(P2, DB)
                !cat(P3, "Networking")
            "#,
        )
        .unwrap();
        assert_eq!(ev.len(), 6);
        let items: Vec<_> = ev.iter().collect();
        assert!(items[0].positive);
        assert!(!items[5].positive);
        // The program itself carries no evidence; merged domains pick up
        // the constants.
        let author_ty = p.intern_type("author");
        assert!(p.domains[author_ty.index()].is_empty());
        assert_eq!(ev.merged_domains(&p)[author_ty.index()].len(), 2); // Joe, Jake
    }

    #[test]
    fn delta_parsing() {
        let mut p = parse_program(FIGURE1).unwrap();
        let d = parse_delta(
            &mut p,
            "cat(P4, DB)\n+cat(P5, DB)\n!cat(P6, DB)\n-cat(P2, DB)\n~cat(P7, DB) // flip\n",
        )
        .unwrap();
        assert_eq!(d.len(), 5);
        use crate::evidence::DeltaOp;
        assert!(matches!(d.ops[0], DeltaOp::Assert { positive: true, .. }));
        assert!(matches!(d.ops[1], DeltaOp::Assert { positive: true, .. }));
        assert!(matches!(
            d.ops[2],
            DeltaOp::Assert {
                positive: false,
                ..
            }
        ));
        assert!(matches!(d.ops[3], DeltaOp::Retract { .. }));
        assert!(matches!(d.ops[4], DeltaOp::Flip { .. }));
        assert!(parse_delta(&mut p, "-!cat(P1, DB)\n").is_err());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let p = parse_program("// nothing\n\n# also nothing\n*e(t)\n1 e(x)\n").unwrap();
        assert_eq!(p.predicates.len(), 1);
        assert_eq!(p.rules.len(), 1);
    }

    #[test]
    fn disjunction_and_negation() {
        let p = parse_program("*e(t)\nq(t)\n2 !e(x) v q(x)\n").unwrap();
        let rule = &p.rules[0];
        assert_eq!(rule.formula.head.len(), 2);
        match &rule.formula.head[0] {
            Literal::Pred { negated, .. } => assert!(*negated),
            _ => panic!(),
        }
    }

    #[test]
    fn conjunctive_head_distributes() {
        let p = parse_program("*e(t)\nq(t)\n1 e(x) => q(x), e(x)\n").unwrap();
        assert_eq!(p.rules.len(), 2);
        for r in &p.rules {
            assert_eq!(r.formula.head.len(), 1);
            assert_eq!(r.formula.body.len(), 1);
        }
    }

    #[test]
    fn disjunctive_body_distributes() {
        let p = parse_program("*e(t)\nq(t)\n1 e(x) v q(x) => q(x)\n").unwrap();
        assert_eq!(p.rules.len(), 2);
    }

    #[test]
    fn bi_implication_expands() {
        let p = parse_program("*e(t)\nq(t)\n1 e(x) <=> q(x)\n").unwrap();
        assert_eq!(p.rules.len(), 2);
    }

    #[test]
    fn weighted_conjunction_becomes_unit_clauses() {
        let p = parse_program("q(t)\n1 q(A), q(B)\n").unwrap();
        assert_eq!(p.rules.len(), 2);
    }

    #[test]
    fn hard_rule_without_weight() {
        let p = parse_program("q(t)\nq(A).\n").unwrap();
        assert_eq!(p.rules[0].weight, Weight::Hard);
    }

    #[test]
    fn rejects_weightless_soft_rule() {
        assert!(parse_program("q(t)\nq(x)\n").is_err());
    }

    #[test]
    fn rejects_unknown_predicate() {
        assert!(parse_program("1 mystery(x)\n").is_err());
    }

    #[test]
    fn rejects_mixed_separators() {
        assert!(parse_program("q(t)\n1 q(x), q(y) v q(z)\n").is_err());
    }

    #[test]
    fn inequality_literal() {
        let p = parse_program("q(t)\n1 q(x), q(y) => x != y\n").unwrap();
        match &p.rules[0].formula.head[0] {
            Literal::Eq { negated, .. } => assert!(*negated),
            _ => panic!(),
        }
    }

    #[test]
    fn quoted_constants_with_spaces() {
        let mut p = parse_program("*e(t)\n1 e(\"New York\")\n").unwrap();
        let ny = p.symbols.intern("New York");
        match &p.rules[0].formula.head[0] {
            Literal::Pred { atom, .. } => assert_eq!(atom.args[0], Term::Const(ny)),
            _ => panic!(),
        }
    }
}
