//! Rule weights.
//!
//! Section 2.2 and Appendix A.1 of the paper: a rule's weight is a finite
//! real number (soft rule, possibly negative) or ±∞ (hard rule). A ground
//! clause with weight `w` is *violated* in a world `I` when `w > 0` and the
//! clause is false in `I`, or `w < 0` and the clause is true in `I`; hard
//! clauses must never be violated.

use std::fmt;

/// The weight of an MLN rule or ground clause.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Weight {
    /// Finite weight. Positive rewards satisfaction; negative rewards
    /// violation (the clause "should" be false).
    Soft(f64),
    /// `+∞`: the clause must hold in every possible world.
    Hard,
    /// `-∞`: the clause must be false in every possible world.
    NegHard,
}

impl Weight {
    /// Parses the textual weight forms used by the concrete syntax.
    /// Numeric literals that overflow to `±∞` (e.g. `1e999`) are hard
    /// weights — `±∞` *is* the hard semantics (Appendix A.1) — and NaN
    /// is rejected; `Weight::Soft` is always finite after parsing.
    pub fn parse(text: &str) -> Option<Weight> {
        match text {
            "inf" | "+inf" | "infinity" => Some(Weight::Hard),
            "-inf" | "-infinity" => Some(Weight::NegHard),
            _ => match text.parse::<f64>().ok()? {
                w if w == f64::INFINITY => Some(Weight::Hard),
                w if w == f64::NEG_INFINITY => Some(Weight::NegHard),
                w if w.is_nan() => None,
                w => Some(Weight::Soft(w)),
            },
        }
    }

    /// `|w|` for cost accounting; hard weights have no finite magnitude.
    pub fn magnitude(self) -> Option<f64> {
        match self {
            Weight::Soft(w) => Some(w.abs()),
            _ => None,
        }
    }

    /// Whether the weight is `+∞` or `-∞`.
    pub fn is_hard(self) -> bool {
        matches!(self, Weight::Hard | Weight::NegHard)
    }

    /// Whether a clause with this weight is counted as violated when the
    /// clause evaluates to `satisfied`.
    ///
    /// Positive (and `+∞`) weights penalize *unsatisfied* clauses; negative
    /// (and `-∞`) weights penalize *satisfied* clauses (§2.2).
    #[inline]
    pub fn violated_when(self, satisfied: bool) -> bool {
        match self {
            Weight::Soft(w) if w > 0.0 => !satisfied,
            Weight::Soft(w) if w < 0.0 => satisfied,
            Weight::Soft(_) => false, // zero-weight clauses never contribute
            Weight::Hard => !satisfied,
            Weight::NegHard => satisfied,
        }
    }

    /// The sign of the weight: `+1`, `-1`, or `0`.
    pub fn signum(self) -> i8 {
        match self {
            Weight::Soft(w) => {
                if w > 0.0 {
                    1
                } else if w < 0.0 {
                    -1
                } else {
                    0
                }
            }
            Weight::Hard => 1,
            Weight::NegHard => -1,
        }
    }
}

impl fmt::Display for Weight {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Weight::Soft(w) => write!(f, "{w}"),
            Weight::Hard => write!(f, "inf"),
            Weight::NegHard => write!(f, "-inf"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_forms() {
        assert_eq!(Weight::parse("5"), Some(Weight::Soft(5.0)));
        assert_eq!(Weight::parse("-1.5"), Some(Weight::Soft(-1.5)));
        assert_eq!(Weight::parse("inf"), Some(Weight::Hard));
        assert_eq!(Weight::parse("-inf"), Some(Weight::NegHard));
        assert_eq!(Weight::parse("abc"), None);
    }

    #[test]
    fn parse_never_yields_non_finite_soft() {
        // Overflowing numeric literals are ±∞ — the hard semantics —
        // and NaN is rejected: `Soft` is always finite after parsing.
        assert_eq!(Weight::parse("1e999"), Some(Weight::Hard));
        assert_eq!(Weight::parse("-1e999"), Some(Weight::NegHard));
        assert_eq!(Weight::parse("NaN"), None);
        assert_eq!(Weight::parse("nan"), None);
    }

    #[test]
    fn violation_semantics() {
        // Positive weight: violated iff unsatisfied.
        assert!(Weight::Soft(2.0).violated_when(false));
        assert!(!Weight::Soft(2.0).violated_when(true));
        // Negative weight: violated iff satisfied.
        assert!(Weight::Soft(-1.0).violated_when(true));
        assert!(!Weight::Soft(-1.0).violated_when(false));
        // Zero weight: never violated.
        assert!(!Weight::Soft(0.0).violated_when(true));
        assert!(!Weight::Soft(0.0).violated_when(false));
        // Hard clauses.
        assert!(Weight::Hard.violated_when(false));
        assert!(Weight::NegHard.violated_when(true));
    }

    #[test]
    fn display_roundtrip() {
        for w in [Weight::Soft(2.5), Weight::Hard, Weight::NegHard] {
            let text = w.to_string();
            assert_eq!(Weight::parse(&text), Some(w));
        }
    }
}
