//! String interning.
//!
//! Every name in an MLN program — constants, predicate names, type names —
//! is interned to a dense `u32` [`Symbol`]. Grounding and search operate
//! exclusively on symbols; strings are only materialized for display. This
//! mirrors Tuffy's practice of mapping constants to integer ids before
//! bulk-loading them into the RDBMS.

use crate::fxhash::FxHashMap;
use std::fmt;

/// An interned string. Cheap to copy, hash, and compare.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub u32);

impl Symbol {
    /// The raw index of this symbol in its [`SymbolTable`].
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym#{}", self.0)
    }
}

/// An append-only intern table mapping strings to [`Symbol`]s.
#[derive(Default, Clone)]
pub struct SymbolTable {
    names: Vec<Box<str>>,
    index: FxHashMap<Box<str>, Symbol>,
}

impl SymbolTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its existing symbol if already present.
    pub fn intern(&mut self, name: &str) -> Symbol {
        if let Some(&sym) = self.index.get(name) {
            return sym;
        }
        let sym = Symbol(u32::try_from(self.names.len()).expect("symbol table overflow"));
        let boxed: Box<str> = name.into();
        self.names.push(boxed.clone());
        self.index.insert(boxed, sym);
        sym
    }

    /// Looks up a symbol without interning.
    pub fn get(&self, name: &str) -> Option<Symbol> {
        self.index.get(name).copied()
    }

    /// Resolves a symbol back to its string.
    ///
    /// # Panics
    /// Panics if `sym` was not produced by this table.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.names[sym.index()]
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

impl fmt::Debug for SymbolTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SymbolTable")
            .field("len", &self.names.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = SymbolTable::new();
        let a = t.intern("Joe");
        let b = t.intern("Joe");
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn resolve_roundtrip() {
        let mut t = SymbolTable::new();
        let names = ["P1", "P2", "DB", "Networking"];
        let syms: Vec<Symbol> = names.iter().map(|n| t.intern(n)).collect();
        for (name, sym) in names.iter().zip(&syms) {
            assert_eq!(t.resolve(*sym), *name);
            assert_eq!(t.get(name), Some(*sym));
        }
        assert_eq!(t.get("absent"), None);
    }

    #[test]
    fn symbols_are_dense() {
        let mut t = SymbolTable::new();
        for i in 0..100 {
            let s = t.intern(&format!("c{i}"));
            assert_eq!(s.index(), i);
        }
    }
}
