//! `tuffy-serve`: the networked serving layer over the Tuffy engine —
//! the `tuffyd` server binary, its wire protocol, and a blocking client.
//!
//! PR 5 made in-process concurrent serving cheap: an [`tuffy::Engine`]
//! grounds once, [`tuffy::Snapshot`]s share it Arc-style, and
//! [`tuffy::Session`]s fork copy-on-write generations. This crate puts
//! that contract behind a socket, in the spirit of the paper's thesis
//! that inference belongs inside a long-running data-management
//! process: `tuffyd` loads a program once and answers query streams
//! from many clients.
//!
//! # Wire protocol (version 1)
//!
//! The protocol is length-prefixed and line-based, over TCP, built only
//! on `std::net` (the deployment target has no network crates).
//!
//! **Preamble.** On accept the server writes the 8-byte magic
//! `TUFFYD/1`; the client must answer with the same 8 bytes. Anything
//! else draws a typed `bad-magic` error frame and a close — version
//! drift fails at the preamble, not mid-frame. The server then sends a
//! `welcome` frame carrying the protocol version and the generation the
//! connection's session starts on.
//!
//! **Framing.** Every subsequent message is one frame: a 4-byte
//! big-endian payload length, then that many bytes of UTF-8 payload.
//! Zero-length frames are malformed; payloads above the receiver's cap
//! (4 MiB by default) are rejected *without reading* — and since the
//! unread payload makes the stream unsyncable, the connection closes.
//!
//! **Payloads.** A payload is newline-separated lines; the first token
//! of the first line names the message. Floating-point values never
//! cross as decimal text: they are formatted as 16 lowercase hex digits
//! of their IEEE-754 bits (`f64::to_bits`), so a marginal probability
//! or a soft cost survives the round trip *bit-identically* — the
//! property the end-to-end suite pins against in-process
//! [`tuffy::Snapshot::query`] answers. String fields (atom names, delta
//! text, error messages) are backslash-escaped (`\\`, `\n`, `\r`) and
//! placed last on their line. Requests are `query` (with `kind`,
//! `pred`, `given`, `search`, `mcsat` detail lines), `apply` (delta
//! source text), and `ping`; responses are `welcome`, `answer.map`,
//! `answer.marginal`, `answer.topk`, `applied`, `pong`, `busy`, and
//! `error`. [`wire`] documents the exact grammar; the golden tests in
//! `tests/protocol_roundtrip.rs` pin the bytes.
//!
//! # Backpressure
//!
//! Admission control is typed, not implicit: when a limit is hit the
//! server answers a `busy` frame naming the saturated class —
//! [`wire::BusyClass::Connections`] (connection cap, closes),
//! [`wire::BusyClass::Queue`] (total in-flight cap),
//! [`wire::BusyClass::Heavy`] (marginal / top-k / `given` / apply cap),
//! or [`wire::BusyClass::Shutdown`] (the server is draining, closes) —
//! plus the observed in-flight count and the limit. Queue and heavy
//! rejections keep the connection open; the client retries. Because the
//! heavy cap is strictly below the total cap, saturating the server
//! with marginals still leaves admission slots for cheap MAP lookups.
//! Per-request `search`/`mcsat` overrides are clamped to server caps.
//!
//! [`client::RetryPolicy`] packages the retry side of this contract: a
//! typed budget (max attempts, base/cap delay, optional deadline) with
//! exponential backoff whose jitter derives from the attempt count —
//! deterministic, no wall-clock sampling — consumed by
//! [`Client::query_with_retry`].
//!
//! # Generations: committed vs. `given` deltas
//!
//! The server reproduces the in-process generation rules exactly:
//!
//! * an **apply** commits a delta to *this connection's* session,
//!   forking a copy-on-write generation — other connections (and the
//!   engine's base snapshot) never observe it; the `applied` frame
//!   reports the new generation. Under [`Server::start_durable`] the
//!   apply instead appends to the store's delta write-ahead log
//!   *before* it is acknowledged and advances one shared serving head
//!   visible to every connection — a crash replays to the acked
//!   generation on restart;
//! * a **`given`** delta conditions one query on an ephemeral fork that
//!   is discarded after the answer — the connection's generation does
//!   not advance;
//! * plain queries are answered statelessly off the connection's
//!   current snapshot, so answers are bit-identical to
//!   [`tuffy::Snapshot::query`] regardless of connection history or
//!   interleaving.
//!
//! # Faults
//!
//! Every protocol failure is contained to its connection and typed
//! where the peer can still hear it: garbage preambles (`bad-magic`),
//! unparseable or zero-length frames (`malformed`, connection kept —
//! the length prefix preserves sync), oversized prefixes (`too-large`,
//! close), slow-loris mid-frame stalls (`timeout` after the frame
//! deadline, close), and torn frames or mid-request disconnects (clean
//! drop). `tests/net_serve.rs` injects each of these against a live
//! server and asserts no panic, no wedged worker, and no
//! cross-connection corruption.
//!
//! Beyond the protocol layer, request execution runs under
//! `catch_unwind`: a panicking handler answers a typed
//! [`wire::ErrorCode::Internal`] error, releases its admission slots,
//! and leaves every connection serving. At shutdown the server *drains*
//! — in-flight requests finish and deliver their answers, subsequent
//! reads answer `busy shutdown`, the WAL is fsynced last — under
//! [`ServeConfig::drain_deadline`]; `tests/chaos_recovery.rs` pins
//! panic isolation, drain accounting, and crash/recovery equivalence
//! with injected storage faults.

pub mod client;
pub mod server;
pub mod wire;

pub use client::{Client, ClientError, RetryPolicy, WireAnswer};
pub use server::{explain_stats, ServeConfig, Server, ServerStats};
pub use wire::{Busy, BusyClass, ErrorCode, Request, Response, WireQuery, WireQueryKind};
