//! The `tuffyd` server: a [`tuffy::Engine`] behind a `TcpListener`.
//!
//! One thread accepts; each admitted connection gets a handler thread
//! owning a per-connection [`tuffy::Session`] (so committed
//! [`Request::Apply`] deltas fork copy-on-write generations exactly like
//! the in-process API, invisible to every other connection). Queries are
//! answered **statelessly** — bit-identical to calling
//! [`tuffy::Snapshot::query`] on the connection's current generation —
//! so any number of connections racing the same generation reproduce the
//! sequential answers bit for bit.
//!
//! # Admission control
//!
//! Three bounded limits, each reported with a typed [`Busy`] frame
//! instead of queuing unboundedly:
//!
//! * **connections** ([`ServeConfig::max_connections`]) — over the cap
//!   the server answers `busy conn` and closes;
//! * **total in-flight requests** ([`ServeConfig::max_inflight`]) — the
//!   work queue depth across all connections;
//! * **heavy requests** ([`ServeConfig::max_heavy`], strictly smaller) —
//!   marginal, top-k, `given`-conditioned queries and applies, which
//!   sample or fork groundings. Keeping `max_heavy < max_inflight`
//!   reserves slots for cheap MAP lookups, so a burst of heavy marginals
//!   cannot starve them.
//!
//! Per-request parameter overrides are clamped to the server's caps
//! ([`ServeConfig::max_flips`], [`ServeConfig::max_samples`],
//! [`ServeConfig::max_sample_steps`]) — a client cannot buy an unbounded
//! flip budget with one frame.
//!
//! # Fault containment
//!
//! Protocol failures are per-connection, never server-wide: a garbage
//! preamble, zero-length or unparseable frame, oversized length prefix,
//! torn frame, or mid-request disconnect yields a typed error frame
//! (when the peer is still readable) and at worst closes that one
//! connection. A peer that stalls mid-frame is cut off after
//! [`ServeConfig::frame_deadline`] (slow-loris protection); between
//! frames a connection may idle indefinitely. Malformed-but-framed
//! payloads keep the connection open — the length prefix preserves
//! resynchronization — while framing-level faults close it, since the
//! byte stream can no longer be trusted.
//!
//! Request execution itself runs under `catch_unwind`: a panic inside
//! inference (or the chaos hook, [`ServeConfig::chaos_panic_token`])
//! answers a typed `error internal` frame, releases its admission slots
//! (guards are RAII), and leaves the connection, its session, and every
//! other connection serving — snapshots are immutable, so a panicked
//! request cannot have half-mutated shared state.
//!
//! # Durable lineage
//!
//! [`Server::start_durable`] fronts a [`tuffy::DurableEngine`] instead
//! of per-connection sessions: committed applies from *any* connection
//! append to the store's delta write-ahead log **before** the `applied`
//! frame is sent, advance one shared serving head, and become visible to
//! all connections' subsequent queries. A crash after the ack therefore
//! always replays to (at least) the acked generation on restart. WAL
//! append failures answer `error internal` and leave the head on the
//! previous committed generation — a delta that was not made durable is
//! never served.
//!
//! # Graceful drain
//!
//! [`Server::shutdown`] stops accepting, then *drains*: in-flight
//! requests run to completion (their answers are delivered), each
//! connection's next read answers `busy shutdown` and closes, and the
//! WAL is fsynced last. Handlers still running after
//! [`ServeConfig::drain_deadline`] are abandoned (counted in
//! [`ServerStats::aborted`]) so a wedged peer cannot hold the process
//! hostage.

use crate::wire::{
    decode_request, encode_response, Applied, Busy, BusyClass, ErrorCode, Request, Response,
    WireFault, WireMapAnswer, WireProbAnswer, WireProbEntry, WireQuery, WireQueryKind, MAGIC,
    PROTOCOL_VERSION,
};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tuffy::{
    DurableEngine, DurableError, Engine, McSatParams, Query, QueryAnswer, Session, WalkSatParams,
};

/// Server limits and timeouts; see the module docs for the admission
/// model.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Concurrent connections admitted; further accepts answer
    /// `busy conn` and close.
    pub max_connections: usize,
    /// Concurrent in-flight requests across all connections.
    pub max_inflight: usize,
    /// Concurrent heavy requests (marginal / top-k / `given` / apply);
    /// keep below `max_inflight` to reserve capacity for cheap MAPs.
    pub max_heavy: usize,
    /// Per-frame payload cap; larger length prefixes are rejected
    /// without reading (typed `too-large` error, then close).
    pub max_frame_bytes: u32,
    /// Cap on a per-request WalkSAT `max_flips` override.
    pub max_flips: u64,
    /// Cap on a per-request MC-SAT `samples` override.
    pub max_samples: usize,
    /// Cap on a per-request MC-SAT `sample_sat_steps` override.
    pub max_sample_steps: u64,
    /// Socket read timeout — the idle poll tick at which handler
    /// threads notice shutdown. Idle connections are never dropped.
    pub read_timeout: Duration,
    /// Slow-loris deadline: maximum wall time to deliver one complete
    /// frame once its first byte arrived.
    pub frame_deadline: Duration,
    /// Graceful-drain budget: at shutdown, in-flight requests get this
    /// long to finish (each connection's next read answers
    /// `busy shutdown` and closes). Handlers still running at the
    /// deadline are abandoned and counted in [`ServerStats::aborted`].
    pub drain_deadline: Duration,
    /// Chaos hook for the fault-containment suite: a `ping` carrying
    /// this token panics *inside* the request handler, exercising the
    /// `catch_unwind` isolation path. `None` (always, outside tests)
    /// disables it.
    pub chaos_panic_token: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            max_connections: 256,
            max_inflight: 8,
            max_heavy: 4,
            max_frame_bytes: crate::wire::DEFAULT_MAX_FRAME_BYTES,
            max_flips: 10_000_000,
            max_samples: 10_000,
            max_sample_steps: 1_000_000,
            read_timeout: Duration::from_millis(100),
            frame_deadline: Duration::from_secs(10),
            drain_deadline: Duration::from_secs(5),
            chaos_panic_token: None,
        }
    }
}

/// Monotonic serving counters, snapshot via [`Server::stats`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ServerStats {
    /// Connections accepted and admitted.
    pub accepted: u64,
    /// Connections refused at the connection cap.
    pub rejected_connections: u64,
    /// Currently open admitted connections.
    pub active_connections: u64,
    /// Light (plain MAP) queries answered.
    pub queries_light: u64,
    /// Heavy queries (marginal / top-k / `given`) answered.
    pub queries_heavy: u64,
    /// Applies committed.
    pub applies: u64,
    /// Requests rejected with a `busy` frame (queue or heavy class).
    pub busy_rejections: u64,
    /// Protocol faults (bad magic, malformed, torn, oversized).
    pub protocol_errors: u64,
    /// Slow-loris frame deadlines hit.
    pub timeouts: u64,
    /// Requests executing right now.
    pub inflight: u64,
    /// Heavy requests executing right now.
    pub inflight_heavy: u64,
    /// Requests whose handler panicked or whose WAL append failed —
    /// each answered with a typed `error internal` frame.
    pub internal_errors: u64,
    /// Connections that finished their in-flight work within the drain
    /// deadline at shutdown.
    pub drained: u64,
    /// Connections abandoned at the drain deadline.
    pub aborted: u64,
}

#[derive(Default)]
struct Counters {
    accepted: AtomicU64,
    rejected_connections: AtomicU64,
    active_connections: AtomicU64,
    queries_light: AtomicU64,
    queries_heavy: AtomicU64,
    applies: AtomicU64,
    busy_rejections: AtomicU64,
    protocol_errors: AtomicU64,
    timeouts: AtomicU64,
    internal_errors: AtomicU64,
    drained: AtomicU64,
    aborted: AtomicU64,
}

/// The two-class admission gate. Guards release on drop, so a panic in
/// inference (which would abort the handler thread, not the server)
/// cannot leak a slot.
struct Admission {
    inflight: AtomicU64,
    inflight_heavy: AtomicU64,
    max_inflight: u64,
    max_heavy: u64,
}

struct AdmissionGuard<'a> {
    admission: &'a Admission,
    heavy: bool,
}

impl Admission {
    fn try_acquire(&self, heavy: bool) -> Result<AdmissionGuard<'_>, Busy> {
        let total = self.inflight.fetch_add(1, Ordering::AcqRel) + 1;
        if total > self.max_inflight {
            self.inflight.fetch_sub(1, Ordering::AcqRel);
            return Err(Busy {
                class: BusyClass::Queue,
                inflight: total - 1,
                limit: self.max_inflight,
            });
        }
        if heavy {
            let h = self.inflight_heavy.fetch_add(1, Ordering::AcqRel) + 1;
            if h > self.max_heavy {
                self.inflight_heavy.fetch_sub(1, Ordering::AcqRel);
                self.inflight.fetch_sub(1, Ordering::AcqRel);
                return Err(Busy {
                    class: BusyClass::Heavy,
                    inflight: h - 1,
                    limit: self.max_heavy,
                });
            }
        }
        Ok(AdmissionGuard {
            admission: self,
            heavy,
        })
    }
}

impl Drop for AdmissionGuard<'_> {
    fn drop(&mut self) {
        if self.heavy {
            self.admission.inflight_heavy.fetch_sub(1, Ordering::AcqRel);
        }
        self.admission.inflight.fetch_sub(1, Ordering::AcqRel);
    }
}

struct Shared {
    engine: Engine,
    config: ServeConfig,
    shutdown: AtomicBool,
    counters: Counters,
    admission: Admission,
    /// Handler threads, joined at shutdown. Finished threads park here
    /// until then; each costs a few KB, bounded by connection churn.
    handlers: Mutex<Vec<JoinHandle<()>>>,
    /// The durable serving lineage ([`Server::start_durable`]); `None`
    /// for in-memory serving with per-connection sessions.
    durable: Option<Mutex<DurableEngine>>,
}

/// Locks the durable lineage, clearing poison: `DurableEngine::apply`
/// is transactional (the WAL append is the commit point; program and
/// head advance only after it succeeds), so state behind a poisoned
/// lock is always a consistent committed generation.
fn lock_durable(durable: &Mutex<DurableEngine>) -> std::sync::MutexGuard<'_, DurableEngine> {
    durable.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A running `tuffyd` server; see the module docs. Dropping (or calling
/// [`Server::shutdown`]) stops the accept loop and joins every handler.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral test port)
    /// and starts serving `engine` in background threads.
    pub fn start(
        engine: Engine,
        addr: impl ToSocketAddrs,
        config: ServeConfig,
    ) -> std::io::Result<Server> {
        Server::start_inner(engine, None, addr, config)
    }

    /// Binds `addr` and serves a durable lineage: applies from every
    /// connection are WAL-logged before they are acknowledged and
    /// advance one shared serving head (see the module docs). Build the
    /// lineage with [`tuffy::DurableEngine::create`] or recover one with
    /// [`tuffy::DurableEngine::open`].
    pub fn start_durable(
        durable: DurableEngine,
        addr: impl ToSocketAddrs,
        config: ServeConfig,
    ) -> std::io::Result<Server> {
        // The lineage's engine is cloned out for instrumentation
        // (`Server::engine`): its counters `Arc` is shared with every
        // generation the durable head forks, so per-engine stats keep
        // covering the whole lineage.
        let engine = durable.engine().clone();
        Server::start_inner(engine, Some(durable), addr, config)
    }

    fn start_inner(
        engine: Engine,
        durable: Option<DurableEngine>,
        addr: impl ToSocketAddrs,
        config: ServeConfig,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            admission: Admission {
                inflight: AtomicU64::new(0),
                inflight_heavy: AtomicU64::new(0),
                max_inflight: config.max_inflight as u64,
                max_heavy: config.max_heavy as u64,
            },
            engine,
            config,
            shutdown: AtomicBool::new(false),
            counters: Counters::default(),
            handlers: Mutex::new(Vec::new()),
            durable: durable.map(Mutex::new),
        });
        let accept_shared = shared.clone();
        let accept = std::thread::Builder::new()
            .name("tuffyd-accept".into())
            .spawn(move || accept_loop(&accept_shared, &listener))?;
        Ok(Server {
            shared,
            addr,
            accept: Some(accept),
        })
    }

    /// The bound address (with the real port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The engine this server fronts — the per-engine instrumentation
    /// path: tests assert on `self.engine().groundings_performed()`
    /// (scoped to this server's lineage) instead of the process-global
    /// grounder counter, so they stay meaningful under
    /// `--test-threads=8`.
    pub fn engine(&self) -> &Engine {
        &self.shared.engine
    }

    /// A snapshot of the serving counters.
    pub fn stats(&self) -> ServerStats {
        let c = &self.shared.counters;
        ServerStats {
            accepted: c.accepted.load(Ordering::Relaxed),
            rejected_connections: c.rejected_connections.load(Ordering::Relaxed),
            active_connections: c.active_connections.load(Ordering::Relaxed),
            queries_light: c.queries_light.load(Ordering::Relaxed),
            queries_heavy: c.queries_heavy.load(Ordering::Relaxed),
            applies: c.applies.load(Ordering::Relaxed),
            busy_rejections: c.busy_rejections.load(Ordering::Relaxed),
            protocol_errors: c.protocol_errors.load(Ordering::Relaxed),
            timeouts: c.timeouts.load(Ordering::Relaxed),
            inflight: self.shared.admission.inflight.load(Ordering::Relaxed),
            inflight_heavy: self.shared.admission.inflight_heavy.load(Ordering::Relaxed),
            internal_errors: c.internal_errors.load(Ordering::Relaxed),
            drained: c.drained.load(Ordering::Relaxed),
            aborted: c.aborted.load(Ordering::Relaxed),
        }
    }

    /// Stops accepting and drains: in-flight requests finish (their
    /// answers are delivered), each connection's next read answers
    /// `busy shutdown`, and the WAL is fsynced last. Handlers still
    /// running after [`ServeConfig::drain_deadline`] are abandoned.
    /// Returns the final counters (including `drained` / `aborted`).
    pub fn shutdown(mut self) -> ServerStats {
        self.stop();
        self.stats()
    }

    fn stop(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        // Drain: handlers finish their in-flight request, answer
        // `busy shutdown` to the next read, and exit (counting
        // themselves as drained). Here we only wait, under the
        // deadline.
        let mut draining = std::mem::take(&mut *self.shared.handlers.lock().unwrap());
        let deadline = Instant::now() + self.shared.config.drain_deadline;
        loop {
            let mut still_running = Vec::new();
            for h in draining {
                if h.is_finished() {
                    let _ = h.join();
                } else {
                    still_running.push(h);
                }
            }
            draining = still_running;
            if draining.is_empty() || Instant::now() >= deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        // Past the deadline: abandon what is left (a wedged peer or a
        // runaway request must not hold shutdown hostage). The detached
        // threads still release their admission slots on exit.
        self.shared
            .counters
            .aborted
            .fetch_add(draining.len() as u64, Ordering::Relaxed);
        drop(draining);
        // Final durability barrier: everything acked is on disk.
        if let Some(durable) = &self.shared.durable {
            let _ = lock_durable(durable).sync();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let active = shared.counters.active_connections.load(Ordering::Relaxed);
        if active >= shared.config.max_connections as u64 {
            shared
                .counters
                .rejected_connections
                .fetch_add(1, Ordering::Relaxed);
            reject_at_accept(shared, stream, active);
            continue;
        }
        shared.counters.accepted.fetch_add(1, Ordering::Relaxed);
        shared
            .counters
            .active_connections
            .fetch_add(1, Ordering::Relaxed);
        let conn_shared = shared.clone();
        let handler = std::thread::Builder::new()
            .name("tuffyd-conn".into())
            .spawn(move || {
                handle_connection(&conn_shared, stream);
                // A connection that ends once shutdown has begun was
                // drained — it finished (or was told `busy shutdown`)
                // rather than being abandoned at the drain deadline.
                if conn_shared.shutdown.load(Ordering::SeqCst) {
                    conn_shared.counters.drained.fetch_add(1, Ordering::Relaxed);
                }
                conn_shared
                    .counters
                    .active_connections
                    .fetch_sub(1, Ordering::Relaxed);
            });
        match handler {
            Ok(handle) => shared.handlers.lock().unwrap().push(handle),
            Err(_) => {
                // Thread spawn failed (resource exhaustion): undo the
                // active count; the stream closed when `spawn` dropped
                // its closure.
                shared
                    .counters
                    .active_connections
                    .fetch_sub(1, Ordering::Relaxed);
            }
        }
    }
}

/// Over the connection cap: still speak the protocol (magic + typed
/// `busy conn`) so the client can distinguish backpressure from a dead
/// server, then close.
fn reject_at_accept(shared: &Shared, mut stream: TcpStream, active: u64) {
    let _ = stream.set_write_timeout(Some(shared.config.frame_deadline));
    let _ = stream.write_all(&MAGIC);
    let _ = write_response(
        &mut stream,
        &Response::Busy(Busy {
            class: BusyClass::Connections,
            inflight: active,
            limit: shared.config.max_connections as u64,
        }),
    );
}

fn write_response(stream: &mut TcpStream, resp: &Response) -> std::io::Result<()> {
    crate::wire::write_frame(stream, &encode_response(resp))
}

/// How one attempt to read the next frame ended.
enum FrameEvent {
    Frame(Vec<u8>),
    /// Peer closed cleanly between frames.
    Closed,
    /// Peer closed mid-frame (torn frame / mid-request disconnect).
    Torn,
    /// Length prefix over the cap (payload left unread).
    TooLarge(u32),
    /// Zero-length frame; stream still in sync.
    Empty,
    /// Frame deadline exceeded mid-frame (slow loris).
    TimedOut,
    /// Server shutdown requested.
    Shutdown,
    /// Unrecoverable socket error.
    Io,
}

fn timeout_kind(kind: ErrorKind) -> bool {
    matches!(kind, ErrorKind::WouldBlock | ErrorKind::TimedOut)
}

/// Reads exactly `buf.len()` bytes under `deadline`, tolerating socket
/// read-timeout ticks (each tick re-checks shutdown and the deadline).
fn read_exact_deadline(
    stream: &mut TcpStream,
    buf: &mut [u8],
    deadline: Instant,
    shutdown: &AtomicBool,
) -> Result<(), FrameEvent> {
    let mut got = 0;
    while got < buf.len() {
        match stream.read(&mut buf[got..]) {
            Ok(0) => return Err(FrameEvent::Torn),
            Ok(n) => got += n,
            Err(e) if timeout_kind(e.kind()) => {
                if shutdown.load(Ordering::SeqCst) {
                    return Err(FrameEvent::Shutdown);
                }
                if Instant::now() >= deadline {
                    return Err(FrameEvent::TimedOut);
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return Err(FrameEvent::Io),
        }
    }
    Ok(())
}

/// Reads the next frame: idles indefinitely *between* frames (checking
/// shutdown each read-timeout tick), but once a frame's first byte
/// arrives the rest must land within `frame_deadline`.
fn next_frame(stream: &mut TcpStream, shared: &Shared) -> FrameEvent {
    let mut first = [0u8; 1];
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return FrameEvent::Shutdown;
        }
        match stream.read(&mut first) {
            Ok(0) => return FrameEvent::Closed,
            Ok(_) => break,
            Err(e) if timeout_kind(e.kind()) || e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return FrameEvent::Io,
        }
    }
    let deadline = Instant::now() + shared.config.frame_deadline;
    let mut rest = [0u8; 3];
    if let Err(ev) = read_exact_deadline(stream, &mut rest, deadline, &shared.shutdown) {
        return ev;
    }
    let len = u32::from_be_bytes([first[0], rest[0], rest[1], rest[2]]);
    if len == 0 {
        return FrameEvent::Empty;
    }
    if len > shared.config.max_frame_bytes {
        return FrameEvent::TooLarge(len);
    }
    let mut payload = vec![0u8; len as usize];
    match read_exact_deadline(stream, &mut payload, deadline, &shared.shutdown) {
        Ok(()) => FrameEvent::Frame(payload),
        Err(ev) => ev,
    }
}

fn fault(code: ErrorCode, message: impl Into<String>) -> Response {
    Response::Error(WireFault {
        code,
        message: message.into(),
    })
}

fn handle_connection(shared: &Shared, mut stream: TcpStream) {
    let cfg = &shared.config;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(cfg.read_timeout));
    let _ = stream.set_write_timeout(Some(cfg.frame_deadline));

    // Preamble: server magic out, client magic in (under the frame
    // deadline — a half-open connect must not hold the slot forever).
    if stream.write_all(&MAGIC).is_err() {
        return;
    }
    let mut client_magic = [0u8; MAGIC.len()];
    let deadline = Instant::now() + cfg.frame_deadline;
    match read_exact_deadline(&mut stream, &mut client_magic, deadline, &shared.shutdown) {
        Ok(()) => {}
        Err(FrameEvent::TimedOut) => {
            shared.counters.timeouts.fetch_add(1, Ordering::Relaxed);
            let _ = write_response(
                &mut stream,
                &fault(ErrorCode::Timeout, "preamble timed out"),
            );
            return;
        }
        Err(_) => return,
    }
    if client_magic != MAGIC {
        shared
            .counters
            .protocol_errors
            .fetch_add(1, Ordering::Relaxed);
        let _ = write_response(
            &mut stream,
            &fault(
                ErrorCode::BadMagic,
                format!(
                    "expected preamble {:?}",
                    std::str::from_utf8(&MAGIC).unwrap()
                ),
            ),
        );
        return;
    }

    // The connection's session: committed applies fork generations here,
    // exactly like the in-process API; queries never touch its state.
    // In durable mode the session is only a fallback — applies and
    // queries route through the shared durable head instead.
    let mut session = shared.engine.open_session();
    let generation = match &shared.durable {
        Some(durable) => lock_durable(durable).generation(),
        None => session.snapshot().generation(),
    };
    if write_response(
        &mut stream,
        &Response::Welcome {
            protocol: PROTOCOL_VERSION,
            generation,
        },
    )
    .is_err()
    {
        return;
    }

    loop {
        let payload = match next_frame(&mut stream, shared) {
            FrameEvent::Frame(payload) => payload,
            FrameEvent::Closed | FrameEvent::Io => return,
            FrameEvent::Torn => {
                // Mid-request disconnect: nothing to answer, the peer is
                // gone. Count it and drop cleanly.
                shared
                    .counters
                    .protocol_errors
                    .fetch_add(1, Ordering::Relaxed);
                return;
            }
            FrameEvent::Empty => {
                // Framing is still in sync; answer and keep serving.
                shared
                    .counters
                    .protocol_errors
                    .fetch_add(1, Ordering::Relaxed);
                if write_response(
                    &mut stream,
                    &fault(ErrorCode::Malformed, "zero-length frame"),
                )
                .is_err()
                {
                    return;
                }
                continue;
            }
            FrameEvent::TooLarge(len) => {
                shared
                    .counters
                    .protocol_errors
                    .fetch_add(1, Ordering::Relaxed);
                let _ = write_response(
                    &mut stream,
                    &fault(
                        ErrorCode::TooLarge,
                        format!(
                            "frame of {len} bytes exceeds the {}-byte cap",
                            cfg.max_frame_bytes
                        ),
                    ),
                );
                return; // payload unread: the stream cannot be resynced
            }
            FrameEvent::TimedOut => {
                shared.counters.timeouts.fetch_add(1, Ordering::Relaxed);
                let _ = write_response(
                    &mut stream,
                    &fault(
                        ErrorCode::Timeout,
                        format!("frame not delivered within {:?}", cfg.frame_deadline),
                    ),
                );
                return;
            }
            FrameEvent::Shutdown => {
                // Typed backpressure, not a fault: the server is
                // draining, the client should reconnect elsewhere/later.
                let _ = write_response(
                    &mut stream,
                    &Response::Busy(Busy {
                        class: BusyClass::Shutdown,
                        inflight: shared.admission.inflight.load(Ordering::Relaxed),
                        limit: shared.config.max_inflight as u64,
                    }),
                );
                return;
            }
        };

        let request = match decode_request(&payload) {
            Ok(request) => request,
            Err(e) => {
                // The frame boundary held, so the stream is still in
                // sync: report and keep the connection.
                shared
                    .counters
                    .protocol_errors
                    .fetch_add(1, Ordering::Relaxed);
                if write_response(&mut stream, &fault(ErrorCode::Malformed, e.message)).is_err() {
                    return;
                }
                continue;
            }
        };

        // Panic isolation: a handler panic (inference bug, chaos hook)
        // must cost exactly one request. Admission guards release on
        // unwind; snapshots are immutable, so no shared state can be
        // left half-mutated — `AssertUnwindSafe` is sound here. The
        // durable lock is poison-cleared by `lock_durable` because
        // `DurableEngine::apply` commits atomically at the WAL append.
        let response = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            handle_request(shared, &mut session, request)
        }))
        .unwrap_or_else(|_| {
            shared
                .counters
                .internal_errors
                .fetch_add(1, Ordering::Relaxed);
            fault(
                ErrorCode::Internal,
                "request handler panicked; the request was abandoned and no state changed",
            )
        });
        if write_response(&mut stream, &response).is_err() {
            return;
        }
    }
}

/// Whether a query needs a heavy admission slot: anything that samples
/// (marginal / top-k) or forks a grounding (`given`).
fn is_heavy(q: &WireQuery) -> bool {
    q.given.is_some() || !matches!(q.kind, WireQueryKind::Map)
}

fn handle_request(shared: &Shared, session: &mut Session, request: Request) -> Response {
    match request {
        Request::Ping { token } => {
            if shared.config.chaos_panic_token == Some(token) {
                panic!("chaos: injected request-handler panic (token {token})");
            }
            Response::Pong { token }
        }
        Request::Apply { delta } => {
            let guard = match shared.admission.try_acquire(true) {
                Ok(guard) => guard,
                Err(busy) => {
                    shared
                        .counters
                        .busy_rejections
                        .fetch_add(1, Ordering::Relaxed);
                    return Response::Busy(busy);
                }
            };
            let _guard = guard;
            if let Some(durable) = &shared.durable {
                return apply_durable(shared, durable, &delta);
            }
            let parsed = match session.parse_delta(&delta) {
                Ok(parsed) => parsed,
                Err(e) => return fault(ErrorCode::Query, e.to_string()),
            };
            match session.apply(&parsed) {
                Ok(report) => {
                    shared.counters.applies.fetch_add(1, Ordering::Relaxed);
                    Response::Applied(Applied {
                        generation: session.snapshot().generation(),
                        incremental: report.incremental,
                        changes: report.changes as u64,
                        clauses: report.clauses as u64,
                        atoms: report.atoms as u64,
                    })
                }
                Err(e) => fault(ErrorCode::Query, e.to_string()),
            }
        }
        Request::Query(wq) => {
            let heavy = is_heavy(&wq);
            let guard = match shared.admission.try_acquire(heavy) {
                Ok(guard) => guard,
                Err(busy) => {
                    shared
                        .counters
                        .busy_rejections
                        .fetch_add(1, Ordering::Relaxed);
                    return Response::Busy(busy);
                }
            };
            let _guard = guard;
            // Durable mode: answer off a fresh reader of the shared
            // committed head (the lock is held only to clone it; the
            // query itself runs unlocked, concurrently with applies).
            let mut reader;
            let session: &mut Session = match &shared.durable {
                Some(durable) => {
                    reader = lock_durable(durable).reader();
                    &mut reader
                }
                None => session,
            };
            let query = match build_query(shared, session, &wq) {
                Ok(query) => query,
                Err(resp) => return resp,
            };
            // Stateless execution: plain queries answer straight off the
            // snapshot (bit-identical to in-process `Snapshot::query`);
            // `given` queries go through the session so a delta whose
            // constants were interned by `parse_delta` resolves against
            // the session's copy-on-write program fork.
            let generation = session.snapshot().generation();
            let answered = if wq.given.is_some() {
                session.query(&query)
            } else {
                session.snapshot().query(&query)
            };
            let answer = match answered {
                Ok(answer) => answer,
                Err(e) => return fault(ErrorCode::Query, e.to_string()),
            };
            if heavy {
                shared
                    .counters
                    .queries_heavy
                    .fetch_add(1, Ordering::Relaxed);
            } else {
                shared
                    .counters
                    .queries_light
                    .fetch_add(1, Ordering::Relaxed);
            }
            render_answer(session, generation, answer)
        }
    }
}

/// Commits a delta to the durable lineage: parse → fork → WAL append
/// (the commit point, fsynced) → advance the shared head. A WAL failure
/// answers `error internal` and the head stays on the previous
/// committed generation — an unlogged delta is never served.
fn apply_durable(shared: &Shared, durable: &Mutex<DurableEngine>, delta: &str) -> Response {
    let mut durable = lock_durable(durable);
    match durable.apply(delta) {
        Ok(outcome) => {
            if let Some(e) = durable.take_checkpoint_error() {
                // The apply itself is durable in the WAL; folding it
                // into the base merely didn't happen yet. Surface and
                // keep serving — the next checkpoint retries.
                eprintln!("tuffyd: checkpoint failed (will retry): {e}");
            }
            shared.counters.applies.fetch_add(1, Ordering::Relaxed);
            Response::Applied(Applied {
                generation: outcome.generation,
                incremental: outcome.report.incremental,
                changes: outcome.report.changes as u64,
                clauses: outcome.report.clauses as u64,
                atoms: outcome.report.atoms as u64,
            })
        }
        Err(DurableError::Invalid(e)) => fault(ErrorCode::Query, e.to_string()),
        Err(DurableError::Store(e)) => {
            shared
                .counters
                .internal_errors
                .fetch_add(1, Ordering::Relaxed);
            fault(
                ErrorCode::Internal,
                format!("delta not committed (previous generation still serving): {e}"),
            )
        }
    }
}

/// Translates a wire query into a core [`Query`], parsing `given` delta
/// text against the session program and clamping parameter overrides to
/// the server caps.
fn build_query(shared: &Shared, session: &mut Session, wq: &WireQuery) -> Result<Query, Response> {
    let cfg = &shared.config;
    let mut query = match &wq.kind {
        WireQueryKind::Map => Query::map(),
        WireQueryKind::Marginal => Query::marginal(wq.predicates.iter().map(String::as_str)),
        WireQueryKind::TopK { predicate, k } => Query::top_k(predicate, *k as usize),
    };
    if let Some(text) = &wq.given {
        let delta = session
            .parse_delta(text)
            .map_err(|e| fault(ErrorCode::Query, e.to_string()))?;
        query = query.given(delta);
    }
    if let Some((max_flips, max_tries, noise, seed)) = wq.search {
        query = query.with_search(WalkSatParams {
            max_flips: max_flips.min(cfg.max_flips),
            max_tries,
            noise,
            seed,
        });
    }
    if let Some((samples, burn_in, steps, p_anneal, temperature, seed)) = wq.mcsat {
        query = query.with_mcsat(McSatParams {
            samples: (samples as usize).min(cfg.max_samples),
            burn_in: burn_in as usize,
            sample_sat_steps: steps.min(cfg.max_sample_steps),
            p_anneal,
            temperature,
            seed,
        });
    }
    Ok(query)
}

/// Renders a core answer as its wire frame. Atom names render against
/// the session program (a superset of the snapshot's when `parse_delta`
/// interned constants), and probabilities travel as raw bits.
fn render_answer(session: &Session, generation: u64, answer: QueryAnswer) -> Response {
    let program = session.program();
    match answer {
        QueryAnswer::Map(r) => Response::Map(WireMapAnswer {
            generation,
            cost_hard: r.cost.hard,
            cost_soft_bits: r.cost.soft.to_bits(),
            flips: r.report.flips,
            atoms: r
                .true_atoms()
                .iter()
                .map(|a| tuffy::render_atom(program, a))
                .collect(),
        }),
        QueryAnswer::Marginal(r) => Response::Marginal(WireProbAnswer {
            generation,
            flips: r.report.flips,
            entries: r
                .names
                .iter()
                .zip(r.marginals.iter())
                .map(|(name, (_, p))| WireProbEntry {
                    probability_bits: p.to_bits(),
                    atom: name.clone(),
                })
                .collect(),
        }),
        QueryAnswer::TopK(r) => Response::TopK(WireProbAnswer {
            generation,
            flips: r.report.flips,
            entries: r
                .entries
                .iter()
                .map(|e| WireProbEntry {
                    probability_bits: e.probability.to_bits(),
                    atom: e.name.clone(),
                })
                .collect(),
        }),
    }
}

/// Renders server stats in the repo's EXPLAIN tree style (the `tuffyd`
/// binary prints this on SIGINT-free exit paths and on demand).
pub fn explain_stats(stats: &ServerStats) -> String {
    format!(
        "Server\n\
         ├─ connections: {} accepted, {} active, {} rejected at cap\n\
         ├─ queries: {} light, {} heavy, {} applies\n\
         ├─ backpressure: {} busy rejections ({} in flight, {} heavy)\n\
         ├─ faults: {} protocol errors, {} frame timeouts, {} internal errors\n\
         └─ drain: {} drained, {} aborted\n",
        stats.accepted,
        stats.active_connections,
        stats.rejected_connections,
        stats.queries_light,
        stats.queries_heavy,
        stats.applies,
        stats.busy_rejections,
        stats.inflight,
        stats.inflight_heavy,
        stats.protocol_errors,
        stats.timeouts,
        stats.internal_errors,
        stats.drained,
        stats.aborted,
    )
}
