//! `tuffyd`: the Tuffy inference server.
//!
//! Loads a program + evidence, grounds **once** into an
//! [`tuffy::Engine`], and serves the wire protocol on a TCP listener
//! until stdin closes (or `quit` is typed). Clients connect with
//! `tuffy --connect HOST:PORT` or [`tuffy_serve::Client`].
//!
//! ```text
//! tuffyd -i prog.mln [-e evidence.db] [--listen ADDR] [--store DIR]
//!        [--checkpoint-every N] [--drain-ms N]
//!        [--flips N] [--seed N] [--parallel N] [--ground-threads N]
//!        [--mem-budget-bytes N]
//!        [--max-connections N] [--max-inflight N] [--max-heavy N]
//!        [--max-frame-bytes N] [--frame-deadline-ms N]
//! ```
//!
//! `--store DIR` makes the serving lineage durable: committed applies
//! append to a delta write-ahead log in `DIR` **before** they are
//! acknowledged, and on restart the server replays base + WAL back to
//! the exact pre-crash generation (torn WAL tails from a crash
//! mid-append are truncated; a recovery report is printed). If `DIR`
//! already holds a generation file, the server warm-starts from it in
//! milliseconds — no re-grounding, bit-identical answers, and the saved
//! engine configuration applies (the CLI's config flags only matter on
//! the run that grounds). Otherwise the server grounds as usual and
//! saves the result into `DIR` (atomically; a crash mid-save leaves the
//! previous state). A corrupt or truncated store file is reported and
//! re-ground from sources, never served. Every `--checkpoint-every`
//! WAL records (default 64; 0 disables) the log is folded into a new
//! base generation so recovery time stays bounded.
//!
//! `--mem-budget-bytes N` bounds grounding-time join state: oversized
//! intermediate results spill to sorted on-disk runs instead of
//! materializing in RAM (out-of-core grounding; the result is
//! bit-identical to the in-memory path).
//!
//! Runtime commands on stdin: `stats` prints the serving counters,
//! `quit` (or EOF) shuts down gracefully — in-flight requests drain
//! under `--drain-ms` (default 5000), late clients see `busy shutdown`,
//! and the WAL is fsynced before exit.

use std::io::BufRead;
use std::process::ExitCode;
use std::time::Duration;
use tuffy::{DurableEngine, Engine, Tuffy, TuffyConfig, WalkSatParams};
use tuffy_serve::{explain_stats, ServeConfig, Server};

struct Args {
    program: String,
    evidence: Option<String>,
    listen: String,
    store: Option<String>,
    checkpoint_every: u64,
    flips: u64,
    seed: u64,
    threads: usize,
    ground_threads: usize,
    mem_budget_bytes: usize,
    serve: ServeConfig,
}

fn usage() -> &'static str {
    "usage: tuffyd -i <prog.mln> [-e <evidence.db>] [--listen ADDR] [--store DIR]\n\
     \x20       [--checkpoint-every N] [--drain-ms N]\n\
     \x20       [--flips N] [--seed N] [--parallel N] [--ground-threads N]\n\
     \x20       [--mem-budget-bytes N]\n\
     \x20       [--max-connections N] [--max-inflight N] [--max-heavy N]\n\
     \x20       [--max-frame-bytes N] [--frame-deadline-ms N]"
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        program: String::new(),
        evidence: None,
        listen: "127.0.0.1:7090".to_string(),
        store: None,
        checkpoint_every: 64,
        flips: 1_000_000,
        seed: 42,
        threads: 1,
        ground_threads: 0,
        mem_budget_bytes: 0,
        serve: ServeConfig::default(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} expects a value\n{}", usage()))
        };
        fn num<T: std::str::FromStr>(flag: &str, v: String) -> Result<T, String>
        where
            T::Err: std::fmt::Display,
        {
            v.parse().map_err(|e| format!("{flag}: {e}"))
        }
        match flag.as_str() {
            "-i" => args.program = value("-i")?,
            "-e" => args.evidence = Some(value("-e")?),
            "--listen" => args.listen = value("--listen")?,
            "--store" => args.store = Some(value("--store")?),
            "--checkpoint-every" => args.checkpoint_every = num(&flag, value(&flag)?)?,
            "--drain-ms" => {
                args.serve.drain_deadline = Duration::from_millis(num(&flag, value(&flag)?)?);
            }
            "--mem-budget-bytes" => args.mem_budget_bytes = num(&flag, value(&flag)?)?,
            "--flips" => args.flips = num(&flag, value(&flag)?)?,
            "--seed" => args.seed = num(&flag, value(&flag)?)?,
            "--parallel" | "--threads" => args.threads = num(&flag, value(&flag)?)?,
            "--ground-threads" => args.ground_threads = num(&flag, value(&flag)?)?,
            "--max-connections" => args.serve.max_connections = num(&flag, value(&flag)?)?,
            "--max-inflight" => args.serve.max_inflight = num(&flag, value(&flag)?)?,
            "--max-heavy" => args.serve.max_heavy = num(&flag, value(&flag)?)?,
            "--max-frame-bytes" => args.serve.max_frame_bytes = num(&flag, value(&flag)?)?,
            "--frame-deadline-ms" => {
                args.serve.frame_deadline = Duration::from_millis(num(&flag, value(&flag)?)?);
            }
            "-h" | "--help" => return Err(usage().to_string()),
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
    }
    if args.program.is_empty() {
        return Err(format!("missing -i <prog.mln>\n{}", usage()));
    }
    Ok(args)
}

/// Recovers the durable lineage from `dir` when it holds a generation
/// (replaying the delta WAL back to the pre-crash generation), otherwise
/// grounds from sources and creates a fresh lineage there. Load
/// failures (missing file, corruption) fall back to grounding — a
/// broken store is reported, never served.
fn durable_with_store(
    args: &Args,
    config: TuffyConfig,
    dir: &str,
) -> Result<DurableEngine, String> {
    let dir = std::path::Path::new(dir);
    if dir.join(tuffy::GENERATION_FILE).exists() {
        match DurableEngine::open(dir, args.checkpoint_every) {
            Ok((durable, recovery)) => {
                eprintln!(
                    "recovered from {} in {:?}: generation {} (replayed {} WAL deltas, \
                     skipped {} checkpointed{}; no re-grounding; saved config applies)",
                    dir.display(),
                    recovery.wall,
                    recovery.generation,
                    recovery.replayed,
                    recovery.skipped,
                    if recovery.truncated_tail {
                        "; truncated a torn WAL tail"
                    } else {
                        ""
                    },
                );
                return Ok(durable);
            }
            Err(e) => eprintln!("store at {} unusable ({e}); re-grounding", dir.display()),
        }
    }
    let engine = build_engine(args, config)?;
    let durable =
        DurableEngine::create(engine, dir, args.checkpoint_every).map_err(|e| e.to_string())?;
    eprintln!("saved grounded generation to {}", dir.display());
    Ok(durable)
}

/// Grounds from the program/evidence sources.
fn build_engine(args: &Args, config: TuffyConfig) -> Result<Engine, String> {
    let program_src =
        std::fs::read_to_string(&args.program).map_err(|e| format!("{}: {e}", args.program))?;
    let evidence_src = match &args.evidence {
        Some(path) => std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?,
        None => String::new(),
    };
    Tuffy::from_sources(&program_src, &evidence_src)
        .map_err(|e| e.to_string())?
        .with_config(config)
        .build_engine()
        .map_err(|e| e.to_string())
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let config = TuffyConfig {
        threads: args.threads,
        ground_threads: args.ground_threads,
        optimizer: tuffy::OptimizerConfig {
            mem_budget_bytes: args.mem_budget_bytes,
            ..Default::default()
        },
        search: WalkSatParams {
            max_flips: args.flips,
            seed: args.seed,
            ..Default::default()
        },
        ..Default::default()
    };
    let server = match &args.store {
        Some(dir) => {
            let durable = durable_with_store(&args, config, dir)?;
            let reader = durable.reader();
            let snapshot = reader.snapshot();
            eprintln!(
                "grounded {} clauses over {} atoms; serving generation {} (durable, \
                 checkpoint every {} deltas)",
                snapshot.grounding().mrf.clauses().len(),
                snapshot.grounding().registry.len(),
                snapshot.generation(),
                args.checkpoint_every,
            );
            Server::start_durable(durable, args.listen.as_str(), args.serve)
                .map_err(|e| e.to_string())?
        }
        None => {
            let engine = build_engine(&args, config)?;
            let snapshot = engine.snapshot();
            eprintln!(
                "grounded {} clauses over {} atoms; serving generation {}",
                snapshot.grounding().mrf.clauses().len(),
                snapshot.grounding().registry.len(),
                snapshot.generation(),
            );
            Server::start(engine, args.listen.as_str(), args.serve).map_err(|e| e.to_string())?
        }
    };
    eprintln!(
        "tuffyd listening on {} ({} connections, {} in-flight, {} heavy; `stats`, `quit`)",
        server.local_addr(),
        args.serve.max_connections,
        args.serve.max_inflight,
        args.serve.max_heavy,
    );

    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        match line.map_err(|e| e.to_string())?.trim() {
            "" => {}
            "stats" => eprint!("{}", explain_stats(&server.stats())),
            "quit" | "q" => break,
            other => eprintln!("unknown command `{other}` (try `stats` or `quit`)"),
        }
    }
    // Drain before the final report so `drained` / `aborted` are real.
    let final_stats = server.shutdown();
    eprint!("{}", explain_stats(&final_stats));
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
