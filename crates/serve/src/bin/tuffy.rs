//! The Tuffy command-line interface.
//!
//! Mirrors the original system's usage: a program file, an evidence
//! file, and an output file of inferred atoms.
//!
//! ```text
//! tuffy -i prog.mln -e evidence.db [-r result.out] [--marginal] \
//!       [--delta d.db ...] [--session] [--serve N] [--connect ADDR] \
//!       [--flips N] [--parallel N] [--no-partition] [--mem-budget BYTES] \
//!       [--partition-rounds N] [--seed N] [--arch hybrid|inmemory|rdbms] \
//!       [--explain] [--explain-schedule] [--join-order auto|program] \
//!       [--join-algo auto|nl] [--no-pushdown] [--no-stats] \
//!       [--ground-threads N]
//! ```
//!
//! All inference runs inside one long-lived session (ground once, query
//! many). `--delta FILE` (repeatable) applies an evidence-delta file
//! after the initial inference and re-runs it, printing whether the
//! grounding was patched incrementally or re-ground. `--session` enters
//! a REPL on stdin: each line is a delta edit (`atom` / `+atom` assert
//! true, `!atom` assert false, `-atom` retract, `~atom` flip) or a
//! command (`:map`, `:marginal`, `:explain`, `:quit`); edits re-run
//! inference immediately.
//!
//! `--serve N` turns every inference (initial, post-delta, and REPL
//! `:map`/`:marginal`) into a concurrent-serving demonstration: N
//! threads each run the same query against the session's current
//! snapshot, the outputs are verified bit-identical, and the measured
//! queries/sec is reported — zero re-grounding, one shared store.
//!
//! `--connect HOST:PORT` talks to a running `tuffyd` instead of loading
//! a program: no `-i`/`-e`, inference runs server-side against the
//! connection's session, and `--delta`/`--session` commit deltas over
//! the wire (forking that session's generation copy-on-write, invisible
//! to other clients). Local-engine flags are rejected in this mode.
//!
//! `--explain` prints the physical plan (`EXPLAIN`) of every grounding
//! query under the selected lesion knobs and exits without running
//! inference; the three lesion flags mirror the paper's Table 6 study.
//! `--explain-schedule` does the same for the inference scheduler.
//! `--threads` and `--budget` are accepted as aliases of `--parallel`
//! and `--mem-budget`.
//!
//! `--learn LABELS.db` switches to weight learning: the labels file
//! (evidence syntax over the query predicates) becomes the training
//! world, the engine grounds once eagerly, and `--learn-iters`
//! iterations of `--learner vp` (voted perceptron, MAP-based) or
//! `--learner dn` (diagonal Newton, marginal-based) fit the soft rule
//! weights on that fixed grounding. The output is the learned weight
//! per rule; the per-iteration gradient trace goes to stderr.

use std::io::BufRead;
use std::process::ExitCode;
use tuffy::{
    Architecture, GroundingMode, JoinAlgorithmPolicy, JoinOrderPolicy, McSatParams,
    PartitionStrategy, Query, Session, Tuffy, TuffyConfig, WalkSatParams,
};
use tuffy_learn::{DiagonalNewton, Learner, TrainingSet, VotedPerceptron, WeightLearner};
use tuffy_serve::client::{Client, RetryPolicy, WireAnswer};
use tuffy_serve::wire::{WireQuery, WireQueryKind};

struct Args {
    program: String,
    evidence: Option<String>,
    result: Option<String>,
    deltas: Vec<String>,
    session: bool,
    serve: usize,
    connect: Option<String>,
    marginal: bool,
    explain: bool,
    explain_schedule: bool,
    flips: u64,
    threads: usize,
    partition: PartitionStrategy,
    partition_rounds: usize,
    seed: u64,
    arch: Architecture,
    join_order: JoinOrderPolicy,
    join_algorithm: JoinAlgorithmPolicy,
    pushdown: bool,
    use_stats: bool,
    ground_threads: usize,
    mem_budget_bytes: usize,
    learn: Option<String>,
    learner: LearnerKind,
    learn_iters: usize,
}

#[derive(Clone, Copy, PartialEq)]
enum LearnerKind {
    VotedPerceptron,
    DiagonalNewton,
}

fn usage() -> &'static str {
    "usage: tuffy -i <prog.mln> [-e <evidence.db>] [-r <result.out>]\n\
     \x20       [--marginal] [--delta <delta.db>]... [--session] [--serve N]\n\
     \x20       [--connect HOST:PORT] [--flips N] [--parallel N] [--no-partition]\n\
     \x20       [--mem-budget BYTES] [--partition-rounds N] [--seed N]\n\
     \x20       [--arch hybrid|inmemory|rdbms] [--explain] [--explain-schedule]\n\
     \x20       [--join-order auto|program] [--join-algo auto|nl]\n\
     \x20       [--no-pushdown] [--no-stats] [--ground-threads N]\n\
     \x20       [--mem-budget-bytes N]\n\
     \x20       [--learn <labels.db>] [--learner vp|dn] [--learn-iters N]"
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        program: String::new(),
        evidence: None,
        result: None,
        deltas: Vec::new(),
        session: false,
        serve: 1,
        connect: None,
        marginal: false,
        explain: false,
        explain_schedule: false,
        flips: 1_000_000,
        threads: 1,
        partition: PartitionStrategy::Components,
        partition_rounds: 3,
        seed: 42,
        arch: Architecture::Hybrid,
        join_order: JoinOrderPolicy::Auto,
        join_algorithm: JoinAlgorithmPolicy::Auto,
        pushdown: true,
        use_stats: true,
        ground_threads: 0,
        mem_budget_bytes: 0,
        learn: None,
        learner: LearnerKind::VotedPerceptron,
        learn_iters: 10,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} expects a value\n{}", usage()))
        };
        match flag.as_str() {
            "-i" => args.program = value("-i")?,
            "-e" => args.evidence = Some(value("-e")?),
            "-r" => args.result = Some(value("-r")?),
            "--delta" => args.deltas.push(value("--delta")?),
            "--session" => args.session = true,
            "--connect" => args.connect = Some(value("--connect")?),
            "--serve" => {
                args.serve = value("--serve")?
                    .parse()
                    .map_err(|e| format!("--serve: {e}"))?;
                if args.serve == 0 {
                    return Err("--serve expects at least 1 concurrent query".to_string());
                }
            }
            "--marginal" => args.marginal = true,
            "--explain" => args.explain = true,
            "--explain-schedule" => args.explain_schedule = true,
            "--no-pushdown" => args.pushdown = false,
            "--no-stats" => args.use_stats = false,
            "--ground-threads" => {
                args.ground_threads = value("--ground-threads")?
                    .parse()
                    .map_err(|e| format!("--ground-threads: {e}"))?;
            }
            "--join-order" => {
                args.join_order = match value("--join-order")?.as_str() {
                    "auto" => JoinOrderPolicy::Auto,
                    "program" => JoinOrderPolicy::Program,
                    other => return Err(format!("unknown join order `{other}`")),
                };
            }
            "--join-algo" => {
                args.join_algorithm = match value("--join-algo")?.as_str() {
                    "auto" => JoinAlgorithmPolicy::Auto,
                    "nl" | "nested-loop" => JoinAlgorithmPolicy::NestedLoopOnly,
                    other => return Err(format!("unknown join algorithm `{other}`")),
                };
            }
            "--no-partition" => args.partition = PartitionStrategy::None,
            "--mem-budget" | "--budget" => {
                let v = value(&flag)?;
                let bytes: usize = v.parse().map_err(|e| format!("{flag}: {e}"))?;
                args.partition = PartitionStrategy::Budget(bytes);
            }
            // Note: distinct from `--mem-budget`, which bounds the
            // *search* partitioning; this bounds grounding-time join
            // state and spills the excess to disk.
            "--mem-budget-bytes" => {
                args.mem_budget_bytes =
                    value(&flag)?.parse().map_err(|e| format!("{flag}: {e}"))?;
            }
            "--partition-rounds" => {
                args.partition_rounds = value("--partition-rounds")?
                    .parse()
                    .map_err(|e| format!("--partition-rounds: {e}"))?;
            }
            "--flips" => {
                args.flips = value("--flips")?
                    .parse()
                    .map_err(|e| format!("--flips: {e}"))?;
            }
            "--parallel" | "--threads" => {
                args.threads = value(&flag)?.parse().map_err(|e| format!("{flag}: {e}"))?;
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--arch" => {
                args.arch = match value("--arch")?.as_str() {
                    "hybrid" => Architecture::Hybrid,
                    "inmemory" => Architecture::InMemory,
                    "rdbms" => Architecture::RdbmsOnly,
                    other => return Err(format!("unknown architecture `{other}`")),
                };
            }
            "--learn" => args.learn = Some(value("--learn")?),
            "--learner" => {
                args.learner = match value("--learner")?.as_str() {
                    "vp" | "perceptron" => LearnerKind::VotedPerceptron,
                    "dn" | "newton" => LearnerKind::DiagonalNewton,
                    other => return Err(format!("unknown learner `{other}` (vp|dn)")),
                };
            }
            "--learn-iters" => {
                args.learn_iters = value("--learn-iters")?
                    .parse()
                    .map_err(|e| format!("--learn-iters: {e}"))?;
            }
            "-h" | "--help" => return Err(usage().to_string()),
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
    }
    if args.connect.is_some() {
        if !args.program.is_empty() || args.evidence.is_some() {
            return Err("--connect talks to a running tuffyd; drop -i/-e".to_string());
        }
        if args.explain || args.explain_schedule {
            return Err("--explain requires a local engine, not --connect".to_string());
        }
        if args.learn.is_some() {
            return Err("--learn requires a local engine, not --connect".to_string());
        }
    } else if args.program.is_empty() {
        return Err(format!("missing -i <prog.mln>\n{}", usage()));
    }
    Ok(args)
}

/// The query a CLI inference runs: MAP, or all-predicate marginals
/// seeded from `--seed`.
fn cli_query(marginal: bool, seed: u64) -> Query {
    if marginal {
        Query::marginal_all().with_mcsat(McSatParams {
            seed,
            ..Default::default()
        })
    } else {
        Query::map()
    }
}

/// Renders one query answer the way the CLI emits it, with its progress
/// line on stderr.
fn render_answer(answer: tuffy::QueryAnswer, quiet: bool) -> String {
    match answer {
        tuffy::QueryAnswer::Map(r) => {
            if !quiet {
                eprintln!(
                    "search: {} flips in {:?} ({:.0} flips/sec), solution cost {}",
                    r.report.flips, r.report.search_time, r.report.flips_per_sec, r.cost
                );
            }
            r.to_text()
        }
        tuffy::QueryAnswer::Marginal(r) => {
            if !quiet {
                eprintln!(
                    "marginals over {} atoms: {} flips in {:?} ({:.0} flips/sec)",
                    r.report.atoms, r.report.flips, r.report.search_time, r.report.flips_per_sec
                );
            }
            let mut out = String::new();
            for (name, (_, p)) in r.names.iter().zip(r.marginals.iter()) {
                out.push_str(&format!("{p:.4}\t{name}\n"));
            }
            out
        }
        tuffy::QueryAnswer::TopK(r) => {
            let mut out = String::new();
            for e in &r.entries {
                out.push_str(&format!("{:.4}\t{}\n", e.probability, e.name));
            }
            out
        }
    }
}

/// Runs one inference over the session and returns the rendered output.
/// With `--serve N` (N > 1) the query instead runs N times concurrently
/// against the session's current snapshot — one shared grounded store,
/// zero re-grounding — verifying the outputs bit-identical and
/// reporting the measured throughput.
fn infer(session: &mut Session, marginal: bool, seed: u64, serve: usize) -> Result<String, String> {
    if serve > 1 {
        return serve_concurrently(session, marginal, seed, serve);
    }
    let query = cli_query(marginal, seed);
    let answer = session.query(&query).map_err(|e| e.to_string())?;
    Ok(render_answer(answer, false))
}

/// The `--serve N` path: N threads × 1 query over one snapshot.
fn serve_concurrently(
    session: &Session,
    marginal: bool,
    seed: u64,
    serve: usize,
) -> Result<String, String> {
    let query = cli_query(marginal, seed);
    let snapshot = session.snapshot();
    let started = std::time::Instant::now();
    let outputs: Vec<Result<String, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..serve)
            .map(|_| {
                let snapshot = snapshot.clone();
                let query = query.clone();
                scope.spawn(move || {
                    snapshot
                        .query(&query)
                        .map(|a| render_answer(a, true))
                        .map_err(|e| e.to_string())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("serve worker panicked"))
            .collect()
    });
    let elapsed = started.elapsed();
    let mut outputs = outputs.into_iter().collect::<Result<Vec<_>, _>>()?;
    let first = outputs.swap_remove(0);
    if outputs.iter().any(|o| *o != first) {
        return Err("serve mode produced diverging outputs across threads".to_string());
    }
    eprintln!(
        "serve: {serve} concurrent identical quer{} over generation {} in {elapsed:?} \
         ({:.1} queries/sec), outputs bit-identical",
        if serve == 1 { "y" } else { "ies" },
        snapshot.generation(),
        serve as f64 / elapsed.as_secs_f64().max(1e-9),
    );
    Ok(first)
}

fn apply_and_report(
    session: &mut Session,
    delta_src: &str,
    marginal: bool,
    seed: u64,
    serve: usize,
) -> Result<String, String> {
    let delta = session.parse_delta(delta_src).map_err(|e| e.to_string())?;
    let t0 = std::time::Instant::now();
    let report = session.apply(&delta).map_err(|e| e.to_string())?;
    let output = infer(session, marginal, seed, serve)?;
    eprintln!(
        "delta: {} change(s), {} in {:?}, re-inference in {:?} total",
        report.changes,
        if report.incremental {
            "patched incrementally".to_string()
        } else {
            format!(
                "full re-ground ({})",
                report.reason.as_deref().unwrap_or("unknown")
            )
        },
        report.wall,
        t0.elapsed(),
    );
    Ok(output)
}

fn emit(args: &Args, output: &str) -> Result<(), String> {
    match &args.result {
        Some(path) => std::fs::write(path, output).map_err(|e| format!("{path}: {e}")),
        None => {
            print!("{output}");
            Ok(())
        }
    }
}

fn repl(session: &mut Session, args: &Args) -> Result<(), String> {
    eprintln!(
        "session REPL: evidence edits re-run inference (`atom` assert true, `!atom` assert \
         false, `-atom` retract, `~atom` flip); :map :marginal :explain :quit"
    );
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| e.to_string())?;
        let trimmed = line.trim();
        let outcome = match trimmed {
            "" => continue,
            ":quit" | ":q" => break,
            ":explain" => {
                eprint!("{}", session.explain());
                continue;
            }
            ":map" => infer(session, false, args.seed, args.serve),
            ":marginal" => infer(session, true, args.seed, args.serve),
            _ => apply_and_report(session, trimmed, args.marginal, args.seed, args.serve),
        };
        match outcome {
            Ok(output) => emit(args, &output)?,
            Err(e) => eprintln!("error: {e}"),
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Networked mode (`--connect`)
// ---------------------------------------------------------------------

/// The wire mirror of [`cli_query`]: the same MAP / seeded-marginal
/// request, with `--flips`/`--seed` carried as explicit per-request
/// overrides (a remote server doesn't share this process's config).
fn net_query(marginal: bool, flips: u64, seed: u64) -> WireQuery {
    if marginal {
        let m = McSatParams {
            seed,
            ..Default::default()
        };
        WireQuery {
            kind: WireQueryKind::Marginal,
            mcsat: Some((
                m.samples as u64,
                m.burn_in as u64,
                m.sample_sat_steps,
                m.p_anneal,
                m.temperature,
                m.seed,
            )),
            ..WireQuery::default()
        }
    } else {
        let w = WalkSatParams {
            max_flips: flips,
            seed,
            ..Default::default()
        };
        WireQuery {
            kind: WireQueryKind::Map,
            search: Some((w.max_flips, w.max_tries, w.noise, w.seed)),
            ..WireQuery::default()
        }
    }
}

/// Renders a wire answer in the same output format as the local path:
/// evidence-syntax atom lines for MAP, `prob\tatom` rows for
/// marginal/top-k. Probabilities and costs arrive as exact IEEE bits.
fn render_wire_answer(answer: &WireAnswer, quiet: bool) -> String {
    match answer {
        WireAnswer::Map(a) => {
            if !quiet {
                let cost = tuffy::Cost {
                    hard: a.cost_hard,
                    soft: f64::from_bits(a.cost_soft_bits),
                };
                eprintln!(
                    "search (remote, generation {}): {} flips, solution cost {}",
                    a.generation, a.flips, cost
                );
            }
            let mut out = String::new();
            for atom in &a.atoms {
                out.push_str(atom);
                out.push('\n');
            }
            out
        }
        WireAnswer::Marginal(a) | WireAnswer::TopK(a) => {
            if !quiet {
                eprintln!(
                    "marginals (remote, generation {}): {} entries, {} flips",
                    a.generation,
                    a.entries.len(),
                    a.flips
                );
            }
            let mut out = String::new();
            for e in &a.entries {
                out.push_str(&format!(
                    "{:.4}\t{}\n",
                    f64::from_bits(e.probability_bits),
                    e.atom
                ));
            }
            out
        }
    }
}

fn net_infer(client: &mut Client, marginal: bool, args: &Args) -> Result<String, String> {
    // Ride out transient backpressure (`busy queue` / `busy heavy`)
    // with the shared typed retry budget instead of failing the CLI.
    let (answer, retries) = client
        .query_with_retry(
            &net_query(marginal, args.flips, args.seed),
            &RetryPolicy::default(),
        )
        .map_err(|e| e.to_string())?;
    if retries > 0 {
        eprintln!(
            "server busy: answered after {retries} retr{}",
            plural_y(retries)
        );
    }
    Ok(render_wire_answer(&answer, false))
}

fn plural_y(n: u32) -> &'static str {
    if n == 1 {
        "y"
    } else {
        "ies"
    }
}

fn net_apply_and_report(
    client: &mut Client,
    delta_src: &str,
    args: &Args,
) -> Result<String, String> {
    let applied = client.apply(delta_src).map_err(|e| e.to_string())?;
    eprintln!(
        "delta: {} change(s), {} — generation {} ({} clauses over {} atoms)",
        applied.changes,
        if applied.incremental {
            "patched incrementally"
        } else {
            "full re-ground"
        },
        applied.generation,
        applied.clauses,
        applied.atoms,
    );
    net_infer(client, args.marginal, args)
}

fn net_repl(client: &mut Client, args: &Args) -> Result<(), String> {
    eprintln!(
        "remote session REPL: evidence edits re-run inference server-side; :map :marginal :quit"
    );
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| e.to_string())?;
        let trimmed = line.trim();
        let outcome = match trimmed {
            "" => continue,
            ":quit" | ":q" => break,
            ":explain" => {
                eprintln!("error: :explain requires a local engine");
                continue;
            }
            ":map" => net_infer(client, false, args),
            ":marginal" => net_infer(client, true, args),
            _ => net_apply_and_report(client, trimmed, args),
        };
        match outcome {
            Ok(output) => emit(args, &output)?,
            Err(e) => eprintln!("error: {e}"),
        }
    }
    Ok(())
}

/// The `--connect` path: same CLI surface, inference runs in `tuffyd`.
fn run_connect(addr: &str, args: &Args) -> Result<(), String> {
    let mut client = Client::connect(addr).map_err(|e| format!("{addr}: {e}"))?;
    eprintln!(
        "connected to tuffyd at {addr} (protocol {}, generation {})",
        client.protocol(),
        client.generation(),
    );
    let output = net_infer(&mut client, args.marginal, args)?;
    emit(args, &output)?;

    for path in &args.deltas {
        let delta_src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("applying delta {path}");
        let output = net_apply_and_report(&mut client, &delta_src, args)?;
        emit(args, &output)?;
    }

    if args.session {
        net_repl(&mut client, args)?;
    }
    Ok(())
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    if let Some(addr) = &args.connect {
        return run_connect(addr, &args);
    }
    let program_src =
        std::fs::read_to_string(&args.program).map_err(|e| format!("{}: {e}", args.program))?;
    let evidence_src = match &args.evidence {
        Some(path) => std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?,
        None => String::new(),
    };
    let config = TuffyConfig {
        architecture: args.arch,
        partitioning: args.partition,
        partition_rounds: args.partition_rounds,
        threads: args.threads,
        ground_threads: args.ground_threads,
        optimizer: tuffy::OptimizerConfig {
            join_order: args.join_order,
            join_algorithm: args.join_algorithm,
            pushdown: args.pushdown,
            // `--no-stats` is the full statistics lesion: estimates fall
            // back to raw table lengths and adaptive re-planning (which
            // exists to correct statistics) is disabled with it.
            use_stats: args.use_stats,
            replan: args.use_stats,
            mem_budget_bytes: args.mem_budget_bytes,
        },
        search: WalkSatParams {
            max_flips: args.flips,
            seed: args.seed,
            ..Default::default()
        },
        ..Default::default()
    };
    if let Some(labels_path) = &args.learn {
        return run_learn(&args, &program_src, &evidence_src, labels_path, config);
    }
    let tuffy = Tuffy::from_sources(&program_src, &evidence_src)
        .map_err(|e| e.to_string())?
        .with_config(config);

    if args.explain_schedule {
        let text = tuffy.explain_schedule().map_err(|e| e.to_string())?;
        return emit(&args, &text);
    }
    if args.explain {
        let text = tuffy.explain_grounding().map_err(|e| e.to_string())?;
        return emit(&args, &text);
    }

    let mut session = tuffy.open_session().map_err(|e| e.to_string())?;
    eprintln!(
        "grounded {} clauses over {} atoms in {:?}",
        session.grounding().mrf.clauses().len(),
        session.grounding().registry.len(),
        session.grounding().stats.wall
    );
    let output = infer(&mut session, args.marginal, args.seed, args.serve)?;
    emit(&args, &output)?;

    for path in &args.deltas {
        let delta_src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("applying delta {path}");
        let output = apply_and_report(
            &mut session,
            &delta_src,
            args.marginal,
            args.seed,
            args.serve,
        )?;
        emit(&args, &output)?;
    }

    if args.session {
        repl(&mut session, &args)?;
    }
    Ok(())
}

/// The `--learn` path: the labels file becomes the training world and
/// the CLI fits the soft rule weights on one fixed grounding, printing
/// the learned weight per rule.
fn run_learn(
    args: &Args,
    program_src: &str,
    evidence_src: &str,
    labels_path: &str,
    config: TuffyConfig,
) -> Result<(), String> {
    let labels_src =
        std::fs::read_to_string(labels_path).map_err(|e| format!("{labels_path}: {e}"))?;
    let mut program = tuffy_mln::parser::parse_program(program_src).map_err(|e| e.to_string())?;
    let evidence =
        tuffy_mln::parser::parse_evidence(&mut program, evidence_src).map_err(|e| e.to_string())?;
    let labels =
        tuffy_mln::parser::parse_evidence(&mut program, &labels_src).map_err(|e| e.to_string())?;
    let labels: Vec<_> = labels.iter().cloned().collect();

    // A learning engine must materialize the query atoms it learns
    // about: with the labels withheld from evidence, lazy closure would
    // have nothing to activate.
    let config = TuffyConfig {
        grounding: GroundingMode::Eager,
        ..config
    };
    let engine = Tuffy::from_parts(program, evidence)
        .with_config(config)
        .build_engine()
        .map_err(|e| e.to_string())?;
    let snapshot = engine.snapshot();
    eprintln!(
        "grounded {} clauses over {} atoms in {:?}",
        snapshot.grounding().mrf.num_clauses(),
        snapshot.grounding().registry.len(),
        snapshot.grounding().stats.wall
    );
    let training = TrainingSet::from_labels(&snapshot, &labels);
    if training.labeled() == 0 {
        return Err(format!(
            "{labels_path}: no label resolved to a query atom of the grounding"
        ));
    }
    eprintln!(
        "training world: {} of {} labels resolved over {} query atoms (unlabeled atoms \
         default false)",
        training.labeled(),
        labels.len(),
        training.world().len(),
    );

    let fit_config = Learner {
        iters: args.learn_iters,
        search: WalkSatParams {
            max_flips: args.flips,
            seed: args.seed,
            ..Default::default()
        },
        mcsat: McSatParams {
            seed: args.seed,
            ..Default::default()
        },
    };
    let learner: Box<dyn WeightLearner> = match args.learner {
        LearnerKind::VotedPerceptron => Box::new(VotedPerceptron::default()),
        LearnerKind::DiagonalNewton => Box::new(DiagonalNewton::default()),
    };
    let started = std::time::Instant::now();
    let fit = fit_config
        .fit(&engine, &training, learner.as_ref())
        .map_err(|e| e.to_string())?;
    for it in &fit.trace {
        eprintln!("learn iter {}: |gradient| = {:.4}", it.iter, it.grad_norm);
    }
    eprintln!(
        "learned {} rule weight(s) with {} in {:?}; groundings performed: {}",
        fit.weights.iter().filter(|w| !w.is_hard()).count(),
        learner.name(),
        started.elapsed(),
        engine.groundings_performed(),
    );

    let mut out = String::new();
    for (i, (w, rule)) in fit
        .weights
        .iter()
        .zip(engine.program().rules.iter())
        .enumerate()
    {
        let rendered = match w {
            tuffy::Weight::Soft(v) => format!("{v:.6}"),
            tuffy::Weight::Hard => "hard".to_string(),
            tuffy::Weight::NegHard => "neg-hard".to_string(),
        };
        out.push_str(&format!("rule {i} (line {}): {rendered}\n", rule.line));
    }
    emit(args, &out)
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
