//! The `tuffyd` client: a blocking connection speaking the wire
//! protocol, used by `tuffy --connect`, the load generator, and the
//! end-to-end test suites.
//!
//! [`Client::connect`] performs the preamble (magic exchange + `welcome`
//! frame) and then exposes one method per request. Responses the server
//! classifies as retryable backpressure surface as
//! [`ClientError::Busy`]; typed server faults as [`ClientError::Server`]
//! — both carry the wire frame so callers can branch on
//! [`crate::wire::BusyClass`] / [`crate::wire::ErrorCode`].

use crate::wire::{
    decode_response, encode_request, read_frame, write_frame, Applied, Busy, ErrorCode,
    FrameReadError, Request, Response, WireFault, WireMapAnswer, WireProbAnswer, WireQuery,
    DEFAULT_MAX_FRAME_BYTES, MAGIC, PROTOCOL_VERSION,
};
use std::fmt;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (connect refused, reset, timeout, ...).
    Io(std::io::Error),
    /// The server rejected the request with typed backpressure; the
    /// connection is still usable and the request can be retried.
    Busy(Busy),
    /// The server answered with a typed error frame.
    Server(WireFault),
    /// The server closed the connection.
    Closed,
    /// The peer violated the wire protocol (bad magic, bad frame,
    /// unexpected response kind).
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Busy(b) => write!(
                f,
                "server busy ({}): {} in flight, limit {}",
                b.class.as_str(),
                b.inflight,
                b.limit
            ),
            ClientError::Server(e) => {
                write!(f, "server error ({}): {}", e.code.as_str(), e.message)
            }
            ClientError::Closed => write!(f, "server closed the connection"),
            ClientError::Protocol(m) => write!(f, "protocol violation: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

/// A query answer as it crossed the wire (probabilities and costs as
/// exact IEEE-754 bits — see [`crate::wire`]).
#[derive(Clone, Debug, PartialEq)]
pub enum WireAnswer {
    /// A MAP world.
    Map(WireMapAnswer),
    /// Marginal probabilities.
    Marginal(WireProbAnswer),
    /// Top-k entries.
    TopK(WireProbAnswer),
}

impl WireAnswer {
    /// The engine generation the answer was computed against.
    pub fn generation(&self) -> u64 {
        match self {
            WireAnswer::Map(a) => a.generation,
            WireAnswer::Marginal(a) | WireAnswer::TopK(a) => a.generation,
        }
    }
}

/// A blocking `tuffyd` connection.
pub struct Client {
    stream: TcpStream,
    /// Server protocol version from the `welcome` frame.
    protocol: u32,
    /// Engine generation of this connection's session at connect time;
    /// updated by [`Client::apply`].
    generation: u64,
    max_frame_bytes: u32,
}

impl Client {
    /// Connects and performs the preamble. Fails with
    /// [`ClientError::Busy`] when the server is at its connection cap
    /// and with [`ClientError::Protocol`] when the peer does not speak
    /// the `tuffyd` protocol.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        Client::handshake(stream)
    }

    /// [`Client::connect`] with a connect + preamble timeout.
    pub fn connect_timeout(
        addr: &std::net::SocketAddr,
        timeout: Duration,
    ) -> Result<Client, ClientError> {
        let stream = TcpStream::connect_timeout(addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        let client = Client::handshake(stream)?;
        client.stream.set_read_timeout(None)?;
        client.stream.set_write_timeout(None)?;
        Ok(client)
    }

    fn handshake(mut stream: TcpStream) -> Result<Client, ClientError> {
        stream.set_nodelay(true)?;
        let mut server_magic = [0u8; MAGIC.len()];
        stream.read_exact(&mut server_magic).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                ClientError::Closed
            } else {
                ClientError::Io(e)
            }
        })?;
        if server_magic != MAGIC {
            return Err(ClientError::Protocol(format!(
                "server preamble {server_magic:?} is not the tuffyd magic"
            )));
        }
        stream.write_all(&MAGIC)?;
        stream.flush()?;
        let mut client = Client {
            stream,
            protocol: 0,
            generation: 0,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
        };
        match client.read_response()? {
            Response::Welcome {
                protocol,
                generation,
            } => {
                if protocol != PROTOCOL_VERSION {
                    return Err(ClientError::Protocol(format!(
                        "server speaks protocol {protocol}, client speaks {PROTOCOL_VERSION}"
                    )));
                }
                client.protocol = protocol;
                client.generation = generation;
                Ok(client)
            }
            Response::Busy(b) => Err(ClientError::Busy(b)),
            Response::Error(e) => Err(ClientError::Server(e)),
            other => Err(ClientError::Protocol(format!(
                "expected a welcome frame, got {other:?}"
            ))),
        }
    }

    /// The negotiated protocol version.
    pub fn protocol(&self) -> u32 {
        self.protocol
    }

    /// The generation of this connection's server-side session: the
    /// base generation at connect, advanced by committed
    /// [`Client::apply`] calls (never by queries, including `given`).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Executes a query and returns the answer frame.
    pub fn query(&mut self, query: &WireQuery) -> Result<WireAnswer, ClientError> {
        self.send(&Request::Query(query.clone()))?;
        match self.read_response()? {
            Response::Map(a) => Ok(WireAnswer::Map(a)),
            Response::Marginal(a) => Ok(WireAnswer::Marginal(a)),
            Response::TopK(a) => Ok(WireAnswer::TopK(a)),
            Response::Busy(b) => Err(ClientError::Busy(b)),
            Response::Error(e) => Err(ClientError::Server(e)),
            other => Err(ClientError::Protocol(format!(
                "expected an answer frame, got {other:?}"
            ))),
        }
    }

    /// Commits an evidence delta (source text, `parse_delta` syntax) to
    /// this connection's session, forking its generation.
    pub fn apply(&mut self, delta: &str) -> Result<Applied, ClientError> {
        self.send(&Request::Apply {
            delta: delta.to_string(),
        })?;
        match self.read_response()? {
            Response::Applied(a) => {
                self.generation = a.generation;
                Ok(a)
            }
            Response::Busy(b) => Err(ClientError::Busy(b)),
            Response::Error(e) => Err(ClientError::Server(e)),
            other => Err(ClientError::Protocol(format!(
                "expected an applied frame, got {other:?}"
            ))),
        }
    }

    /// Round-trips a token through the server (liveness check).
    pub fn ping(&mut self, token: u64) -> Result<(), ClientError> {
        self.send(&Request::Ping { token })?;
        match self.read_response()? {
            Response::Pong { token: t } if t == token => Ok(()),
            Response::Pong { token: t } => Err(ClientError::Protocol(format!(
                "pong token {t} does not match ping token {token}"
            ))),
            Response::Busy(b) => Err(ClientError::Busy(b)),
            Response::Error(e) => Err(ClientError::Server(e)),
            other => Err(ClientError::Protocol(format!(
                "expected a pong frame, got {other:?}"
            ))),
        }
    }

    fn send(&mut self, request: &Request) -> Result<(), ClientError> {
        write_frame(&mut self.stream, &encode_request(request))?;
        Ok(())
    }

    fn read_response(&mut self) -> Result<Response, ClientError> {
        let payload = match read_frame(&mut self.stream, self.max_frame_bytes) {
            Ok(payload) => payload,
            Err(FrameReadError::Closed) => return Err(ClientError::Closed),
            Err(FrameReadError::Truncated) => {
                return Err(ClientError::Protocol("truncated response frame".into()))
            }
            Err(FrameReadError::TooLarge(len)) => {
                return Err(ClientError::Protocol(format!(
                    "response frame of {len} bytes exceeds the client cap"
                )))
            }
            Err(FrameReadError::Empty) => {
                return Err(ClientError::Protocol("zero-length response frame".into()))
            }
            Err(FrameReadError::Io(e)) => return Err(ClientError::Io(e)),
        };
        decode_response(&payload)
            .map_err(|e| ClientError::Protocol(format!("undecodable response: {}", e.message)))
    }
}

/// A typed retry budget for [`Client::query_with_retry`]: exponential
/// backoff with a cap, bounded by attempts and an optional wall-clock
/// deadline.
///
/// The jitter that de-synchronizes competing clients is derived from
/// the **attempt count**, not the wall clock, so a run's retry
/// schedule is a pure function of its inputs — load-generator
/// experiments stay reproducible.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total attempts (the first try included); 0 behaves as 1.
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles each retry after.
    pub base_delay: Duration,
    /// Cap on any single backoff sleep.
    pub max_delay: Duration,
    /// Optional wall-clock budget: a retry whose sleep would overrun it
    /// is not taken and the last `Busy` error is returned instead.
    pub deadline: Option<Duration>,
}

impl Default for RetryPolicy {
    /// 16 attempts, 2 ms doubling to a 200 ms cap, no deadline — the
    /// shape the `exp_net` load generator always used.
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 16,
            base_delay: Duration::from_millis(2),
            max_delay: Duration::from_millis(200),
            deadline: None,
        }
    }
}

impl RetryPolicy {
    /// The sleep before retry number `retry` (0-based): exponential
    /// from `base_delay`, capped at `max_delay`, jittered into
    /// `[cap/2, cap]` by a hash of the retry count.
    pub fn backoff(&self, retry: u32) -> Duration {
        let exp = self
            .base_delay
            .saturating_mul(1u32.checked_shl(retry.min(31)).unwrap_or(u32::MAX));
        let capped = exp.min(self.max_delay);
        let half = capped / 2;
        if half.is_zero() {
            return capped;
        }
        // SplitMix64-style mix of the attempt count — deterministic,
        // but decorrelated across attempts and across policies.
        let mut h = (retry as u64).wrapping_add(0x9e37_79b9_7f4a_7c15);
        h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^= h >> 31;
        let jitter_ns = h % (half.as_nanos() as u64 + 1);
        half + Duration::from_nanos(jitter_ns)
    }
}

impl Client {
    /// [`Client::query`] with retries on [`ClientError::Busy`] under a
    /// [`RetryPolicy`]. Any other error returns immediately (a `busy
    /// shutdown` retries like any backpressure, then surfaces as
    /// [`ClientError::Closed`] once the draining server hangs up).
    /// Returns the answer and how many retries it took.
    pub fn query_with_retry(
        &mut self,
        query: &WireQuery,
        policy: &RetryPolicy,
    ) -> Result<(WireAnswer, u32), ClientError> {
        let start = Instant::now();
        let mut retries = 0u32;
        loop {
            match self.query(query) {
                Ok(answer) => return Ok((answer, retries)),
                Err(e @ ClientError::Busy(_)) => {
                    if retries + 1 >= policy.max_attempts.max(1) {
                        return Err(e);
                    }
                    let sleep = policy.backoff(retries);
                    if let Some(deadline) = policy.deadline {
                        if start.elapsed() + sleep > deadline {
                            return Err(e);
                        }
                    }
                    std::thread::sleep(sleep);
                    retries += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// Convenience: is this a retryable backpressure error?
pub fn is_busy(err: &ClientError) -> bool {
    matches!(err, ClientError::Busy(_))
}

/// Convenience: is this a typed server fault with the given code?
pub fn is_server_error(err: &ClientError, code: ErrorCode) -> bool {
    matches!(err, ClientError::Server(f) if f.code == code)
}
