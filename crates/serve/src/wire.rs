//! The `tuffyd` wire protocol: length-prefixed frames of line-based
//! text.
//!
//! # Framing
//!
//! Every message travels as one **frame**: a 4-byte big-endian payload
//! length followed by that many payload bytes. A connection begins with
//! an 8-byte magic preamble ([`MAGIC`], `b"TUFFYD/1"`) in *both*
//! directions — the server writes its preamble immediately on accept,
//! the client answers with the same bytes — so version or protocol
//! mismatches are caught before any frame is parsed. Zero-length frames
//! are malformed; frames longer than the receiver's configured cap are
//! rejected *without reading the payload* (the typed `too-large` error,
//! then connection close, since the stream can no longer be resynced).
//!
//! # Payload
//!
//! A payload is UTF-8 text: newline-separated lines, the first of which
//! names the frame kind. Numeric fields are decimal; every `f64`
//! crosses the wire as the 16-hex-digit big-endian rendering of its IEEE
//! bits ([`f64_hex`]), so answers survive encode→decode **bit
//! identically** — "close enough" round-tripping would break the serving
//! layer's claim that networked answers equal in-process ones. A string
//! field is always the last field on its line and is escaped
//! ([`esc`]/[`unesc`]: `\\`, `\n`, `\r`) so embedded newlines (delta
//! text) cannot tear the line structure.
//!
//! The full grammar, by first line:
//!
//! ```text
//! requests                          responses
//! --------                          ---------
//! query                             welcome <protocol> <generation>
//!   kind map                        answer.map <gen> <hard> <soft-hex> <flips>
//!   kind marginal                     atom <name>            (repeated)
//!   kind topk <k> <predicate>       answer.marginal <gen> <flips>
//!   pred <name>      (repeated)       entry <prob-hex> <name> (repeated)
//!   given <delta-text>  (optional)  answer.topk <gen> <flips>
//!   search <flips> <tries>            entry <prob-hex> <name> (repeated)
//!          <noise-hex> <seed>       applied <gen> <0|1> <changes>
//!   mcsat <samples> <burn-in>               <clauses> <atoms>
//!         <steps> <anneal-hex>      pong <token>
//!         <temp-hex> <seed>         busy <class> <inflight> <limit>
//! apply                             error <code> <message>
//!   delta <delta-text>
//! ping <token>
//! ```
//!
//! Deltas and `given` conditioning cross the wire as **delta source
//! text** (the `tuffy_mln::parser::parse_delta` syntax), not interned
//! ids: symbol ids are private to one engine's symbol table, so the
//! server parses delta text against the receiving connection's own
//! session program (interning new constants copy-on-write, exactly like
//! the in-process API).

use std::io::{Read, Write};

/// Connection preamble, both directions. The trailing `/1` is the
/// protocol generation: an incompatible revision changes the magic, so
/// old peers fail at the preamble instead of mid-frame.
pub const MAGIC: [u8; 8] = *b"TUFFYD/1";

/// Protocol version reported in the `welcome` frame.
pub const PROTOCOL_VERSION: u32 = 1;

/// Default cap on a single frame's payload bytes.
pub const DEFAULT_MAX_FRAME_BYTES: u32 = 4 * 1024 * 1024;

/// A malformed payload: the frame arrived intact but its text does not
/// parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError {
    /// What failed to parse.
    pub message: String,
}

impl WireError {
    fn new(message: impl Into<String>) -> WireError {
        WireError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed frame: {}", self.message)
    }
}

impl std::error::Error for WireError {}

// ---------------------------------------------------------------------
// Messages
// ---------------------------------------------------------------------

/// What a networked query computes — the wire mirror of
/// [`tuffy::Query`]'s kinds.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum WireQueryKind {
    /// The most likely world.
    #[default]
    Map,
    /// Per-atom marginals, restricted to the `pred` lines (all query
    /// predicates when none are given).
    Marginal,
    /// The `k` most probable atoms of one predicate.
    TopK {
        /// Ranked predicate.
        predicate: String,
        /// Entries requested.
        k: u64,
    },
}

/// A query request as it crosses the wire. `given` is delta source
/// text (parsed server-side against the connection's session program);
/// `search`/`mcsat` are per-request parameter overrides, clamped by the
/// server's admission caps.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WireQuery {
    /// Answer shape.
    pub kind: WireQueryKind,
    /// Marginal predicate filter (`kind marginal` only; empty = all).
    pub predicates: Vec<String>,
    /// Ephemeral conditioning delta text, if any.
    pub given: Option<String>,
    /// WalkSAT override: `(max_flips, max_tries, noise, seed)`.
    pub search: Option<(u64, u32, f64, u64)>,
    /// MC-SAT override: `(samples, burn_in, steps, p_anneal,
    /// temperature, seed)`.
    pub mcsat: Option<(u64, u64, u64, f64, f64, u64)>,
}

/// A client→server frame.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Run a query against the connection's current generation.
    Query(WireQuery),
    /// Commit an evidence delta (source text) to the connection's
    /// session, forking a new generation copy-on-write.
    Apply {
        /// Delta source text.
        delta: String,
    },
    /// Liveness probe; answered with `pong` carrying the same token.
    Ping {
        /// Echo token.
        token: u64,
    },
}

/// A MAP answer on the wire: cost (hard count + soft bits), flips, and
/// the rendered true atoms in registry order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WireMapAnswer {
    /// Generation the answer was computed against.
    pub generation: u64,
    /// Violated hard clauses of the returned world.
    pub cost_hard: u64,
    /// IEEE bits of the soft cost.
    pub cost_soft_bits: u64,
    /// Search flips spent.
    pub flips: u64,
    /// Rendered true atoms (`pred(arg, ...)`).
    pub atoms: Vec<String>,
}

/// One `(probability, atom)` row of a marginal or top-k answer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireProbEntry {
    /// IEEE bits of the probability.
    pub probability_bits: u64,
    /// Rendered atom.
    pub atom: String,
}

/// A marginal or top-k answer on the wire.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WireProbAnswer {
    /// Generation the answer was computed against.
    pub generation: u64,
    /// Sampler flips spent.
    pub flips: u64,
    /// The rows, in answer order.
    pub entries: Vec<WireProbEntry>,
}

/// Outcome of a committed [`Request::Apply`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Applied {
    /// Generation the connection reads after the apply.
    pub generation: u64,
    /// Whether the grounding was patched incrementally.
    pub incremental: bool,
    /// Net evidence changes.
    pub changes: u64,
    /// Ground clauses after the apply.
    pub clauses: u64,
    /// Query atoms after the apply.
    pub atoms: u64,
}

/// Which admission limit a `busy` frame reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BusyClass {
    /// The connection cap: the server refused the connection itself.
    Connections,
    /// The total in-flight request cap.
    Queue,
    /// The heavy-request cap (marginal / top-k / `given` / `apply`).
    Heavy,
    /// The server is draining for shutdown: in-flight requests finish,
    /// new ones are refused. Retryable — against the replacement
    /// process, not this connection.
    Shutdown,
}

impl BusyClass {
    /// The wire token of this class (`conn` / `queue` / `heavy` /
    /// `shutdown`).
    pub fn as_str(self) -> &'static str {
        match self {
            BusyClass::Connections => "conn",
            BusyClass::Queue => "queue",
            BusyClass::Heavy => "heavy",
            BusyClass::Shutdown => "shutdown",
        }
    }
}

/// Backpressure: the request was well-formed but the server is at an
/// admission limit. Retryable; the connection stays open (except
/// [`BusyClass::Connections`], which closes it).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Busy {
    /// Saturated limit.
    pub class: BusyClass,
    /// In-flight count observed at rejection.
    pub inflight: u64,
    /// The configured limit.
    pub limit: u64,
}

/// Typed error categories of an `error` frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The connection preamble was not [`MAGIC`].
    BadMagic,
    /// A frame arrived intact but did not parse (or was zero-length).
    Malformed,
    /// A length prefix exceeded the receiver's frame cap.
    TooLarge,
    /// A frame was not delivered within the server's deadline
    /// (slow-loris protection).
    Timeout,
    /// The request parsed but inference rejected it (unknown predicate,
    /// invalid delta, grounding failure, ...).
    Query,
    /// The server is shutting down.
    Shutdown,
    /// The request handler failed internally (a contained panic, or a
    /// storage fault that prevented a durable commit). The connection's
    /// session and the shared engine are unaffected.
    Internal,
}

impl ErrorCode {
    /// The wire token of this code (`bad-magic`, `malformed`, ...).
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadMagic => "bad-magic",
            ErrorCode::Malformed => "malformed",
            ErrorCode::TooLarge => "too-large",
            ErrorCode::Timeout => "timeout",
            ErrorCode::Query => "query",
            ErrorCode::Shutdown => "shutdown",
            ErrorCode::Internal => "internal",
        }
    }
}

/// A typed error frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireFault {
    /// Error category.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

/// A server→client frame.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Handshake acknowledgment: protocol version and the generation
    /// the connection's session starts on.
    Welcome {
        /// Protocol version ([`PROTOCOL_VERSION`]).
        protocol: u32,
        /// Starting generation.
        generation: u64,
    },
    /// Answer to a MAP query.
    Map(WireMapAnswer),
    /// Answer to a marginal query.
    Marginal(WireProbAnswer),
    /// Answer to a top-k query.
    TopK(WireProbAnswer),
    /// Outcome of an apply.
    Applied(Applied),
    /// Answer to a ping.
    Pong {
        /// The request's token, echoed.
        token: u64,
    },
    /// Admission backpressure; retry later.
    Busy(Busy),
    /// Typed failure.
    Error(WireFault),
}

// ---------------------------------------------------------------------
// Escaping and f64 bits
// ---------------------------------------------------------------------

/// Escapes a string field for single-line transport: `\` → `\\`,
/// newline → `\n`, carriage return → `\r`.
pub fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

/// Inverts [`esc`]; rejects truncated or unknown escapes.
pub fn unesc(s: &str) -> Result<String, WireError> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some(c) => return Err(WireError::new(format!("unknown escape `\\{c}`"))),
            None => return Err(WireError::new("truncated escape at end of field")),
        }
    }
    Ok(out)
}

/// Renders an `f64` as the 16-hex-digit form of its IEEE bits — the
/// bit-identical transport encoding.
pub fn f64_hex(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn parse_f64_hex(s: &str) -> Result<f64, WireError> {
    if s.len() != 16 {
        return Err(WireError::new(format!("bad f64 bits `{s}`")));
    }
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|_| WireError::new(format!("bad f64 bits `{s}`")))
}

fn parse_num<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, WireError> {
    s.parse()
        .map_err(|_| WireError::new(format!("bad {what} `{s}`")))
}

// ---------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------

/// Writes one frame: 4-byte big-endian length, then the payload.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(payload.len()).map_err(|_| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, "frame payload over 4 GiB")
    })?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Why [`read_frame`] failed.
#[derive(Debug)]
pub enum FrameReadError {
    /// EOF before any prefix byte: the peer closed cleanly between
    /// frames.
    Closed,
    /// EOF mid-prefix or mid-payload: a torn frame.
    Truncated,
    /// The length prefix exceeded the caller's cap (payload unread —
    /// the stream cannot be resynced).
    TooLarge(u32),
    /// A zero-length frame.
    Empty,
    /// Any other I/O failure (including read timeouts, surfaced as
    /// `WouldBlock`/`TimedOut` errors by the socket).
    Io(std::io::Error),
}

impl std::fmt::Display for FrameReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameReadError::Closed => write!(f, "connection closed"),
            FrameReadError::Truncated => write!(f, "torn frame: connection closed mid-frame"),
            FrameReadError::TooLarge(n) => write!(f, "frame of {n} bytes exceeds the cap"),
            FrameReadError::Empty => write!(f, "zero-length frame"),
            FrameReadError::Io(e) => write!(f, "{e}"),
        }
    }
}

/// Reads one frame, blocking. Used by the client (and by tests feeding
/// raw bytes); the server reads through its own deadline-aware loop.
pub fn read_frame(r: &mut impl Read, max_bytes: u32) -> Result<Vec<u8>, FrameReadError> {
    let mut prefix = [0u8; 4];
    let mut got = 0;
    while got < prefix.len() {
        match r.read(&mut prefix[got..]) {
            Ok(0) if got == 0 => return Err(FrameReadError::Closed),
            Ok(0) => return Err(FrameReadError::Truncated),
            Ok(n) => got += n,
            Err(e) => return Err(FrameReadError::Io(e)),
        }
    }
    let len = u32::from_be_bytes(prefix);
    if len == 0 {
        return Err(FrameReadError::Empty);
    }
    if len > max_bytes {
        return Err(FrameReadError::TooLarge(len));
    }
    let mut payload = vec![0u8; len as usize];
    let mut got = 0;
    while got < payload.len() {
        match r.read(&mut payload[got..]) {
            Ok(0) => return Err(FrameReadError::Truncated),
            Ok(n) => got += n,
            Err(e) => return Err(FrameReadError::Io(e)),
        }
    }
    Ok(payload)
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

/// Encodes a request payload (framing not included).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut out = String::new();
    match req {
        Request::Query(q) => {
            out.push_str("query\n");
            match &q.kind {
                WireQueryKind::Map => out.push_str("kind map\n"),
                WireQueryKind::Marginal => out.push_str("kind marginal\n"),
                WireQueryKind::TopK { predicate, k } => {
                    out.push_str(&format!("kind topk {k} {}\n", esc(predicate)));
                }
            }
            for p in &q.predicates {
                out.push_str(&format!("pred {}\n", esc(p)));
            }
            if let Some(given) = &q.given {
                out.push_str(&format!("given {}\n", esc(given)));
            }
            if let Some((flips, tries, noise, seed)) = q.search {
                out.push_str(&format!(
                    "search {flips} {tries} {} {seed}\n",
                    f64_hex(noise)
                ));
            }
            if let Some((samples, burn_in, steps, p_anneal, temperature, seed)) = q.mcsat {
                out.push_str(&format!(
                    "mcsat {samples} {burn_in} {steps} {} {} {seed}\n",
                    f64_hex(p_anneal),
                    f64_hex(temperature)
                ));
            }
        }
        Request::Apply { delta } => {
            out.push_str("apply\n");
            out.push_str(&format!("delta {}\n", esc(delta)));
        }
        Request::Ping { token } => out.push_str(&format!("ping {token}\n")),
    }
    out.into_bytes()
}

/// Encodes a response payload (framing not included).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut out = String::new();
    match resp {
        Response::Welcome {
            protocol,
            generation,
        } => out.push_str(&format!("welcome {protocol} {generation}\n")),
        Response::Map(a) => {
            out.push_str(&format!(
                "answer.map {} {} {:016x} {}\n",
                a.generation, a.cost_hard, a.cost_soft_bits, a.flips
            ));
            for atom in &a.atoms {
                out.push_str(&format!("atom {}\n", esc(atom)));
            }
        }
        Response::Marginal(a) | Response::TopK(a) => {
            let tag = if matches!(resp, Response::Marginal(_)) {
                "answer.marginal"
            } else {
                "answer.topk"
            };
            out.push_str(&format!("{tag} {} {}\n", a.generation, a.flips));
            for e in &a.entries {
                out.push_str(&format!(
                    "entry {:016x} {}\n",
                    e.probability_bits,
                    esc(&e.atom)
                ));
            }
        }
        Response::Applied(a) => out.push_str(&format!(
            "applied {} {} {} {} {}\n",
            a.generation,
            u8::from(a.incremental),
            a.changes,
            a.clauses,
            a.atoms
        )),
        Response::Pong { token } => out.push_str(&format!("pong {token}\n")),
        Response::Busy(b) => out.push_str(&format!(
            "busy {} {} {}\n",
            b.class.as_str(),
            b.inflight,
            b.limit
        )),
        Response::Error(e) => {
            out.push_str(&format!("error {} {}\n", e.code.as_str(), esc(&e.message)))
        }
    }
    out.into_bytes()
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

/// Splits a payload into lines, requiring UTF-8 and at least one line.
fn lines(payload: &[u8]) -> Result<Vec<&str>, WireError> {
    let text = std::str::from_utf8(payload).map_err(|_| WireError::new("payload is not UTF-8"))?;
    let text = text.strip_suffix('\n').unwrap_or(text);
    if text.is_empty() {
        return Err(WireError::new("empty payload"));
    }
    Ok(text.split('\n').collect())
}

/// Splits `line` at the first space into `(head, rest)`.
fn split_head(line: &str) -> (&str, &str) {
    match line.split_once(' ') {
        Some((head, rest)) => (head, rest),
        None => (line, ""),
    }
}

/// Splits `rest` into exactly `n` space-separated fields.
fn fields<'a>(rest: &'a str, n: usize, what: &str) -> Result<Vec<&'a str>, WireError> {
    let parts: Vec<&str> = if rest.is_empty() {
        Vec::new()
    } else {
        rest.splitn(n, ' ').collect()
    };
    if parts.len() != n || parts.iter().any(|p| p.is_empty()) {
        return Err(WireError::new(format!("`{what}` expects {n} field(s)")));
    }
    Ok(parts)
}

/// Decodes a request payload.
pub fn decode_request(payload: &[u8]) -> Result<Request, WireError> {
    let lines = lines(payload)?;
    let (tag, rest) = split_head(lines[0]);
    match tag {
        "query" => {
            if !rest.is_empty() {
                return Err(WireError::new("`query` takes no inline fields"));
            }
            let mut q = WireQuery::default();
            let mut saw_kind = false;
            for line in &lines[1..] {
                let (key, rest) = split_head(line);
                match key {
                    "kind" => {
                        if saw_kind {
                            return Err(WireError::new("duplicate `kind` line"));
                        }
                        saw_kind = true;
                        let (kind, krest) = split_head(rest);
                        q.kind = match kind {
                            "map" if krest.is_empty() => WireQueryKind::Map,
                            "marginal" if krest.is_empty() => WireQueryKind::Marginal,
                            "topk" => {
                                let (k, pred) = split_head(krest);
                                if pred.is_empty() {
                                    return Err(WireError::new(
                                        "`kind topk` expects k and a predicate",
                                    ));
                                }
                                WireQueryKind::TopK {
                                    predicate: unesc(pred)?,
                                    k: parse_num(k, "top-k count")?,
                                }
                            }
                            other => {
                                return Err(WireError::new(format!("unknown query kind `{other}`")))
                            }
                        };
                    }
                    "pred" => q.predicates.push(unesc(rest)?),
                    "given" => q.given = Some(unesc(rest)?),
                    "search" => {
                        let f = fields(rest, 4, "search")?;
                        q.search = Some((
                            parse_num(f[0], "max_flips")?,
                            parse_num(f[1], "max_tries")?,
                            parse_f64_hex(f[2])?,
                            parse_num(f[3], "seed")?,
                        ));
                    }
                    "mcsat" => {
                        let f = fields(rest, 6, "mcsat")?;
                        q.mcsat = Some((
                            parse_num(f[0], "samples")?,
                            parse_num(f[1], "burn_in")?,
                            parse_num(f[2], "steps")?,
                            parse_f64_hex(f[3])?,
                            parse_f64_hex(f[4])?,
                            parse_num(f[5], "seed")?,
                        ));
                    }
                    other => return Err(WireError::new(format!("unknown query line `{other}`"))),
                }
            }
            if !saw_kind {
                return Err(WireError::new("query without a `kind` line"));
            }
            if !q.predicates.is_empty() && !matches!(q.kind, WireQueryKind::Marginal) {
                return Err(WireError::new("`pred` lines require `kind marginal`"));
            }
            Ok(Request::Query(q))
        }
        "apply" => {
            if !rest.is_empty() {
                return Err(WireError::new("`apply` takes no inline fields"));
            }
            match lines.get(1).map(|l| split_head(l)) {
                Some(("delta", text)) if lines.len() == 2 => Ok(Request::Apply {
                    delta: unesc(text)?,
                }),
                _ => Err(WireError::new("`apply` expects exactly one `delta` line")),
            }
        }
        "ping" => {
            if lines.len() != 1 {
                return Err(WireError::new("`ping` is a single line"));
            }
            Ok(Request::Ping {
                token: parse_num(rest, "ping token")?,
            })
        }
        other => Err(WireError::new(format!("unknown request `{other}`"))),
    }
}

fn decode_prob_answer(lines: &[&str], rest: &str, what: &str) -> Result<WireProbAnswer, WireError> {
    let f = fields(rest, 2, what)?;
    let mut a = WireProbAnswer {
        generation: parse_num(f[0], "generation")?,
        flips: parse_num(f[1], "flips")?,
        entries: Vec::new(),
    };
    for line in lines {
        let (key, rest) = split_head(line);
        if key != "entry" {
            return Err(WireError::new(format!("unknown {what} line `{key}`")));
        }
        let (bits, atom) = split_head(rest);
        if atom.is_empty() {
            return Err(WireError::new("`entry` expects bits and an atom"));
        }
        a.entries.push(WireProbEntry {
            probability_bits: u64::from_str_radix(bits, 16)
                .map_err(|_| WireError::new(format!("bad probability bits `{bits}`")))?,
            atom: unesc(atom)?,
        });
    }
    Ok(a)
}

/// Decodes a response payload.
pub fn decode_response(payload: &[u8]) -> Result<Response, WireError> {
    let lines = lines(payload)?;
    let (tag, rest) = split_head(lines[0]);
    let single = |ok: Response| {
        if lines.len() == 1 {
            Ok(ok)
        } else {
            Err(WireError::new(format!("`{tag}` is a single line")))
        }
    };
    match tag {
        "welcome" => {
            let f = fields(rest, 2, "welcome")?;
            single(Response::Welcome {
                protocol: parse_num(f[0], "protocol")?,
                generation: parse_num(f[1], "generation")?,
            })
        }
        "answer.map" => {
            let f = fields(rest, 4, "answer.map")?;
            let mut a = WireMapAnswer {
                generation: parse_num(f[0], "generation")?,
                cost_hard: parse_num(f[1], "hard cost")?,
                cost_soft_bits: u64::from_str_radix(f[2], 16)
                    .map_err(|_| WireError::new(format!("bad soft-cost bits `{}`", f[2])))?,
                flips: parse_num(f[3], "flips")?,
                atoms: Vec::new(),
            };
            for line in &lines[1..] {
                let (key, rest) = split_head(line);
                if key != "atom" || rest.is_empty() {
                    return Err(WireError::new("answer.map rows must be `atom <name>`"));
                }
                a.atoms.push(unesc(rest)?);
            }
            Ok(Response::Map(a))
        }
        "answer.marginal" => Ok(Response::Marginal(decode_prob_answer(
            &lines[1..],
            rest,
            "answer.marginal",
        )?)),
        "answer.topk" => Ok(Response::TopK(decode_prob_answer(
            &lines[1..],
            rest,
            "answer.topk",
        )?)),
        "applied" => {
            let f = fields(rest, 5, "applied")?;
            let incremental = match f[1] {
                "0" => false,
                "1" => true,
                other => {
                    return Err(WireError::new(format!("bad incremental flag `{other}`")));
                }
            };
            single(Response::Applied(Applied {
                generation: parse_num(f[0], "generation")?,
                incremental,
                changes: parse_num(f[2], "changes")?,
                clauses: parse_num(f[3], "clauses")?,
                atoms: parse_num(f[4], "atoms")?,
            }))
        }
        "pong" => single(Response::Pong {
            token: parse_num(rest, "pong token")?,
        }),
        "busy" => {
            let f = fields(rest, 3, "busy")?;
            let class = match f[0] {
                "conn" => BusyClass::Connections,
                "queue" => BusyClass::Queue,
                "heavy" => BusyClass::Heavy,
                "shutdown" => BusyClass::Shutdown,
                other => return Err(WireError::new(format!("unknown busy class `{other}`"))),
            };
            single(Response::Busy(Busy {
                class,
                inflight: parse_num(f[1], "inflight")?,
                limit: parse_num(f[2], "limit")?,
            }))
        }
        "error" => {
            let (code, message) = split_head(rest);
            let code = match code {
                "bad-magic" => ErrorCode::BadMagic,
                "malformed" => ErrorCode::Malformed,
                "too-large" => ErrorCode::TooLarge,
                "timeout" => ErrorCode::Timeout,
                "query" => ErrorCode::Query,
                "shutdown" => ErrorCode::Shutdown,
                "internal" => ErrorCode::Internal,
                other => return Err(WireError::new(format!("unknown error code `{other}`"))),
            };
            single(Response::Error(WireFault {
                code,
                message: unesc(message)?,
            }))
        }
        other => Err(WireError::new(format!("unknown response `{other}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_roundtrip() {
        for s in ["", "plain", "a\nb", "tab\tstays", "back\\slash\r\n"] {
            assert_eq!(unesc(&esc(s)).unwrap(), s);
        }
        assert!(unesc("dangling\\").is_err());
        assert!(unesc("\\q").is_err());
    }

    #[test]
    fn f64_bits_are_exact() {
        for v in [0.0, -0.0, 1.0, 0.1 + 0.2, f64::NAN, f64::INFINITY] {
            let bits = parse_f64_hex(&f64_hex(v)).unwrap().to_bits();
            assert_eq!(bits, v.to_bits());
        }
    }

    #[test]
    fn frame_roundtrip_and_faults() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        assert_eq!(buf, [&[0, 0, 0, 5][..], b"hello"].concat());
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r, 1024).unwrap(), b"hello");
        assert!(matches!(
            read_frame(&mut &buf[..3], 1024),
            Err(FrameReadError::Truncated)
        ));
        assert!(matches!(
            read_frame(&mut &buf[..7], 1024),
            Err(FrameReadError::Truncated)
        ));
        assert!(matches!(
            read_frame(&mut &[][..], 1024),
            Err(FrameReadError::Closed)
        ));
        assert!(matches!(
            read_frame(&mut &[0u8, 0, 0, 0][..], 1024),
            Err(FrameReadError::Empty)
        ));
        assert!(matches!(
            read_frame(&mut &[0xff, 0xff, 0xff, 0xff, 1][..], 1024),
            Err(FrameReadError::TooLarge(0xffff_ffff))
        ));
    }

    #[test]
    fn malformed_payloads_are_typed_errors() {
        for bad in [
            &b""[..],
            b"\xff\xfe",
            b"nonsense",
            b"query\n",
            b"query\nkind warp\n",
            b"query\nkind map\npred cat\n",
            b"query\nkind map\nsearch 1 2\n",
            b"apply\n",
            b"ping\n",
            b"ping one\n",
        ] {
            assert!(decode_request(bad).is_err(), "{bad:?} should not decode");
        }
        for bad in [
            &b"welcome 1\n"[..],
            b"answer.map 0 0 zz 0\n",
            b"applied 0 2 0 0 0\n",
            b"busy wat 0 0\n",
            b"error wat detail\n",
            b"pong 1\nextra\n",
        ] {
            assert!(decode_response(bad).is_err(), "{bad:?} should not decode");
        }
    }
}
