//! Satellite: the wire protocol cannot drift silently.
//!
//! Two layers of pinning:
//!
//! * **Property roundtrips** — every [`Request`] and [`Response`]
//!   variant (including error and busy frames), with adversarial string
//!   fields (backslashes, newlines, CRs, spaces, unicode) and
//!   adversarial f64 bit patterns (NaN, -0.0, infinities), survives
//!   encode→decode bit-identically.
//! * **Byte goldens** — hand-written wire bytes for each frame kind.
//!   A refactor that changes the encoding breaks a golden even if it
//!   changes encode and decode symmetrically, which a roundtrip test
//!   alone would miss.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use tuffy_serve::wire::{
    decode_request, decode_response, encode_request, encode_response, read_frame, write_frame,
    Applied, Busy, BusyClass, ErrorCode, FrameReadError, Request, Response, WireFault,
    WireMapAnswer, WireProbAnswer, WireProbEntry, WireQuery, WireQueryKind, MAGIC,
};

/// Builds a string from seed bytes over an alphabet chosen to stress
/// the escaping layer: backslashes, both escaped control characters,
/// spaces (field-splitting), parens/commas (atom syntax), and
/// multi-byte unicode.
fn gnarly(seed: &[u8]) -> String {
    const ALPHABET: [char; 16] = [
        'a', 'Z', '0', '_', '(', ')', ',', ' ', '\\', '\n', '\r', 'é', 'λ', '"', '\t', '.',
    ];
    seed.iter()
        .map(|&b| ALPHABET[b as usize % ALPHABET.len()])
        .collect()
}

/// A gnarly string that is guaranteed non-empty and does not *start*
/// with a space (a leading space would merge with the field separator
/// and is not produced by any real renderer).
fn gnarly_name(seed: &[u8]) -> String {
    format!("x{}", gnarly(seed))
}

fn roundtrip_request(req: &Request) -> Request {
    let bytes = encode_request(req);
    let decoded = decode_request(&bytes).expect("encoded request must decode");
    // Re-encoding must reproduce the exact bytes: with f64s carried as
    // IEEE bits this holds even for NaN payloads, where struct equality
    // (`NaN != NaN`) cannot be asserted directly.
    assert_eq!(encode_request(&decoded), bytes);
    decoded
}

fn roundtrip_response(resp: &Response) -> Response {
    let bytes = encode_response(resp);
    let decoded = decode_response(&bytes).expect("encoded response must decode");
    assert_eq!(encode_response(&decoded), bytes);
    decoded
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn query_roundtrips_bit_identically(
        kind_sel in 0u8..3,
        topk_k in any::<u64>(),
        pred_seeds in proptest::collection::vec(
            proptest::collection::vec(0u8..255, 0..10), 0..4),
        given_seed in proptest::collection::vec(0u8..255, 0..32),
        has_given in any::<bool>(),
        search_raw in (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        has_search in any::<bool>(),
        mcsat_raw in (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        has_mcsat in any::<bool>(),
    ) {
        let kind = match kind_sel {
            0 => WireQueryKind::Map,
            1 => WireQueryKind::Marginal,
            _ => WireQueryKind::TopK {
                predicate: gnarly_name(&given_seed),
                k: topk_k,
            },
        };
        let predicates = if kind_sel == 1 {
            pred_seeds.iter().map(|s| gnarly_name(s)).collect()
        } else {
            Vec::new()
        };
        // f64 fields from raw bits: exercises NaN payloads, -0.0,
        // infinities, and subnormals, not just round numbers.
        let (sf, st, sn, ss) = search_raw;
        let (ma, mb, mc, md, me) = mcsat_raw;
        let query = WireQuery {
            kind,
            predicates,
            given: has_given.then(|| gnarly(&given_seed)),
            search: has_search.then(|| (sf, st as u32, f64::from_bits(sn), ss)),
            mcsat: has_mcsat.then(|| (ma, mb, mc, f64::from_bits(md), f64::from_bits(me), ma ^ me)),
        };
        let decoded = roundtrip_request(&Request::Query(query.clone()));
        let Request::Query(q2) = decoded else {
            return Err(TestCaseError::fail("query decoded as a different request"));
        };
        prop_assert_eq!(&q2.kind, &query.kind);
        prop_assert_eq!(&q2.predicates, &query.predicates);
        prop_assert_eq!(&q2.given, &query.given);
        // Compare parameter overrides bitwise (NaN-proof).
        prop_assert_eq!(
            q2.search.map(|(f, t, n, s)| (f, t, n.to_bits(), s)),
            query.search.map(|(f, t, n, s)| (f, t, n.to_bits(), s))
        );
        prop_assert_eq!(
            q2.mcsat.map(|(a, b, c, d, e, s)| (a, b, c, d.to_bits(), e.to_bits(), s)),
            query.mcsat.map(|(a, b, c, d, e, s)| (a, b, c, d.to_bits(), e.to_bits(), s))
        );
    }

    #[test]
    fn apply_and_ping_roundtrip(
        delta_seed in proptest::collection::vec(0u8..255, 0..80),
        token in any::<u64>(),
    ) {
        let apply = Request::Apply { delta: gnarly(&delta_seed) };
        prop_assert_eq!(roundtrip_request(&apply), apply.clone());
        let ping = Request::Ping { token };
        prop_assert_eq!(roundtrip_request(&ping), ping.clone());
    }

    #[test]
    fn every_response_roundtrips(
        sel in 0u8..8,
        a in any::<u64>(),
        b in any::<u64>(),
        c in any::<u64>(),
        flag in any::<bool>(),
        entry_seeds in proptest::collection::vec(
            (any::<u64>(), proptest::collection::vec(0u8..255, 0..10)), 0..5),
        msg_seed in proptest::collection::vec(0u8..255, 0..40),
    ) {
        // Probability/cost bits live as u64 on the wire structs, so
        // direct equality is exact even for NaN bit patterns.
        let entries: Vec<WireProbEntry> = entry_seeds
            .iter()
            .map(|(bits, seed)| WireProbEntry {
                probability_bits: *bits,
                atom: gnarly_name(seed),
            })
            .collect();
        let resp = match sel {
            0 => Response::Welcome { protocol: a as u32, generation: b },
            1 => Response::Map(WireMapAnswer {
                generation: a,
                cost_hard: b,
                cost_soft_bits: c,
                flips: a ^ b,
                atoms: entries.iter().map(|e| e.atom.clone()).collect(),
            }),
            2 => Response::Marginal(WireProbAnswer { generation: a, flips: b, entries }),
            3 => Response::TopK(WireProbAnswer { generation: a, flips: b, entries }),
            4 => Response::Applied(Applied {
                generation: a,
                incremental: flag,
                changes: b,
                clauses: c,
                atoms: a.wrapping_add(b),
            }),
            5 => Response::Pong { token: a },
            6 => Response::Busy(Busy {
                class: match a % 4 {
                    0 => BusyClass::Connections,
                    1 => BusyClass::Queue,
                    2 => BusyClass::Heavy,
                    _ => BusyClass::Shutdown,
                },
                inflight: b,
                limit: c,
            }),
            _ => Response::Error(WireFault {
                code: match a % 7 {
                    0 => ErrorCode::BadMagic,
                    1 => ErrorCode::Malformed,
                    2 => ErrorCode::TooLarge,
                    3 => ErrorCode::Timeout,
                    4 => ErrorCode::Query,
                    5 => ErrorCode::Shutdown,
                    _ => ErrorCode::Internal,
                },
                message: gnarly(&msg_seed),
            }),
        };
        prop_assert_eq!(roundtrip_response(&resp), resp.clone());
    }

    #[test]
    fn frames_roundtrip_any_payload(
        payload in proptest::collection::vec(0u8..255, 1..200),
    ) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        prop_assert_eq!(buf.len(), payload.len() + 4);
        let mut r = &buf[..];
        prop_assert_eq!(read_frame(&mut r, 1024).unwrap(), payload);
    }
}

// ---------------------------------------------------------------------
// Byte goldens: the wire format, spelled out
// ---------------------------------------------------------------------

#[test]
fn golden_magic() {
    assert_eq!(&MAGIC, b"TUFFYD/1");
}

#[test]
fn golden_frame_bytes() {
    let mut buf = Vec::new();
    write_frame(&mut buf, b"ping 7\n").unwrap();
    assert_eq!(buf, b"\x00\x00\x00\x07ping 7\n");
}

#[test]
fn golden_request_bytes() {
    let cases: Vec<(Request, &[u8])> = vec![
        (Request::Ping { token: 7 }, b"ping 7\n"),
        (Request::Query(WireQuery::default()), b"query\nkind map\n"),
        (
            Request::Query(WireQuery {
                kind: WireQueryKind::TopK {
                    predicate: "cat".into(),
                    k: 5,
                },
                ..WireQuery::default()
            }),
            b"query\nkind topk 5 cat\n",
        ),
        (
            // The kitchen sink: marginal with predicate filter, an
            // escaped given delta, and both parameter overrides
            // (0.5 = 0x3fe0000000000000).
            Request::Query(WireQuery {
                kind: WireQueryKind::Marginal,
                predicates: vec!["cat".into(), "wrote".into()],
                given: Some("+p(A)\n!q(B)".into()),
                search: Some((100_000, 1, 0.5, 42)),
                mcsat: Some((200, 20, 2000, 0.5, 0.25, 42)),
            }),
            b"query\nkind marginal\npred cat\npred wrote\ngiven +p(A)\\n!q(B)\n\
              search 100000 1 3fe0000000000000 42\n\
              mcsat 200 20 2000 3fe0000000000000 3fd0000000000000 42\n",
        ),
        (
            Request::Apply {
                delta: "a(b)\n!c(d)".into(),
            },
            b"apply\ndelta a(b)\\n!c(d)\n",
        ),
    ];
    for (req, bytes) in cases {
        assert_eq!(encode_request(&req), bytes, "encode golden for {req:?}");
        assert_eq!(decode_request(bytes).unwrap(), req, "decode golden");
    }
}

#[test]
fn golden_response_bytes() {
    let cases: Vec<(Response, &[u8])> = vec![
        (
            Response::Welcome {
                protocol: 1,
                generation: 0,
            },
            b"welcome 1 0\n",
        ),
        (
            // 1.5 = 0x3ff8000000000000.
            Response::Map(WireMapAnswer {
                generation: 3,
                cost_hard: 2,
                cost_soft_bits: 1.5f64.to_bits(),
                flips: 77,
                atoms: vec!["wrote(P1, Pap)".into(), "cat(Pap, DB)".into()],
            }),
            b"answer.map 3 2 3ff8000000000000 77\natom wrote(P1, Pap)\natom cat(Pap, DB)\n",
        ),
        (
            Response::Marginal(WireProbAnswer {
                generation: 0,
                flips: 10,
                entries: vec![WireProbEntry {
                    probability_bits: 0.25f64.to_bits(),
                    atom: "cat(A, B)".into(),
                }],
            }),
            b"answer.marginal 0 10\nentry 3fd0000000000000 cat(A, B)\n",
        ),
        (
            Response::TopK(WireProbAnswer {
                generation: 1,
                flips: 5,
                entries: vec![WireProbEntry {
                    probability_bits: 0.5f64.to_bits(),
                    atom: "p(X)".into(),
                }],
            }),
            b"answer.topk 1 5\nentry 3fe0000000000000 p(X)\n",
        ),
        (
            Response::Applied(Applied {
                generation: 4,
                incremental: true,
                changes: 3,
                clauses: 10,
                atoms: 7,
            }),
            b"applied 4 1 3 10 7\n",
        ),
        (Response::Pong { token: 99 }, b"pong 99\n"),
        (
            Response::Busy(Busy {
                class: BusyClass::Connections,
                inflight: 256,
                limit: 256,
            }),
            b"busy conn 256 256\n",
        ),
        (
            Response::Busy(Busy {
                class: BusyClass::Queue,
                inflight: 8,
                limit: 8,
            }),
            b"busy queue 8 8\n",
        ),
        (
            Response::Busy(Busy {
                class: BusyClass::Heavy,
                inflight: 4,
                limit: 4,
            }),
            b"busy heavy 4 4\n",
        ),
        (
            // The drain signal at shutdown: backpressure, not a fault.
            Response::Busy(Busy {
                class: BusyClass::Shutdown,
                inflight: 2,
                limit: 8,
            }),
            b"busy shutdown 2 8\n",
        ),
        (
            Response::Error(WireFault {
                code: ErrorCode::TooLarge,
                message: "frame of 9000000 bytes exceeds the cap".into(),
            }),
            b"error too-large frame of 9000000 bytes exceeds the cap\n",
        ),
        (
            // Escaped newline inside an error message.
            Response::Error(WireFault {
                code: ErrorCode::Malformed,
                message: "bad\nline".into(),
            }),
            b"error malformed bad\\nline\n",
        ),
    ];
    for (resp, bytes) in cases {
        assert_eq!(encode_response(&resp), bytes, "encode golden for {resp:?}");
        assert_eq!(decode_response(bytes).unwrap(), resp, "decode golden");
    }
    // Every error code has a stable wire token.
    for (code, token) in [
        (ErrorCode::BadMagic, "bad-magic"),
        (ErrorCode::Malformed, "malformed"),
        (ErrorCode::TooLarge, "too-large"),
        (ErrorCode::Timeout, "timeout"),
        (ErrorCode::Query, "query"),
        (ErrorCode::Shutdown, "shutdown"),
        (ErrorCode::Internal, "internal"),
    ] {
        let resp = Response::Error(WireFault {
            code,
            message: "m".into(),
        });
        assert_eq!(
            encode_response(&resp),
            format!("error {token} m\n").into_bytes()
        );
    }
}

#[test]
fn malformed_payloads_are_rejected() {
    let bad_requests: &[&[u8]] = &[
        b"",
        b"\n",
        b"bogus\n",
        b"query\n",                                          // no kind
        b"query\nkind map\nkind map\n",                      // duplicate kind
        b"query\nkind warp\n",                               // unknown kind
        b"query extra\nkind map\n",                          // inline fields on query
        b"query\nkind topk 5\n",                             // topk without predicate
        b"query\nkind topk five cat\n",                      // non-numeric k
        b"query\nkind map\npred cat\n",                      // pred outside marginal
        b"query\nkind map\nsearch 1 2 3\n",                  // wrong arity
        b"query\nkind map\nsearch 1 2 3fe0000000000000 x\n", // bad seed
        b"query\nkind map\nmystery line\n",                  // unknown detail line
        b"apply\n",                                          // missing delta
        b"apply\ndelta a\ndelta b\n",                        // two deltas
        b"apply\ndelta bad\\q\n",                            // unknown escape
        b"ping\n",                                           // missing token
        b"ping 1 2\n",                                       // extra field
        b"ping abc\n",                                       // non-numeric token
        b"welcome 1 0\n",                                    // a response, not a request
        &[0xff, 0xfe, b'\n'],                                // not UTF-8
    ];
    for payload in bad_requests {
        assert!(
            decode_request(payload).is_err(),
            "request payload should be rejected: {payload:?}"
        );
    }

    let bad_responses: &[&[u8]] = &[
        b"",
        b"bogus\n",
        b"welcome 1\n",                                   // wrong arity
        b"welcome 1 0 9\n",                               // wrong arity
        b"welcome 1 0\nextra\n",                          // trailing lines on a single-line frame
        b"answer.map 1 2 zz 3\n",                         // bad soft-cost bits
        b"answer.map 1 2 3ff8000000000000 3\nrow x\n",    // bad row tag
        b"answer.marginal 1 2\nentry 3fe0000000000000\n", // entry without atom
        b"applied 1 2 3 4 5\n",                           // non-boolean incremental flag
        b"busy wat 1 2\n",                                // unknown busy class
        b"error nope m\n",                                // unknown error code
        b"pong\n",                                        // missing token
        b"ping 7\n",                                      // a request, not a response
    ];
    for payload in bad_responses {
        assert!(
            decode_response(payload).is_err(),
            "response payload should be rejected: {payload:?}"
        );
    }
}

#[test]
fn frame_reader_reports_typed_faults() {
    // Torn frame: prefix promises 10 bytes, stream carries 3.
    let torn = [&4u32.to_be_bytes()[..], b"abc"].concat();
    let torn = [&10u32.to_be_bytes()[..], &torn[4..]].concat();
    assert!(matches!(
        read_frame(&mut &torn[..], 1024),
        Err(FrameReadError::Truncated)
    ));
    // Oversized prefix: rejected without reading the payload.
    let huge = 5_000_000u32.to_be_bytes();
    assert!(matches!(
        read_frame(&mut &huge[..], 1024),
        Err(FrameReadError::TooLarge(5_000_000))
    ));
    // Zero-length frame.
    let empty = 0u32.to_be_bytes();
    assert!(matches!(
        read_frame(&mut &empty[..], 1024),
        Err(FrameReadError::Empty)
    ));
    // Clean close between frames.
    assert!(matches!(
        read_frame(&mut &[][..], 1024),
        Err(FrameReadError::Closed)
    ));
    // Mid-prefix close is torn, not clean.
    assert!(matches!(
        read_frame(&mut &[0u8, 0][..], 1024),
        Err(FrameReadError::Truncated)
    ));
}
