//! The long-lived, `Arc`-shared home of a grounded program.
//!
//! Grounding is the expensive, shareable artifact; search is the cheap,
//! per-query step (§3.2). An [`Engine`] embodies that split: built once
//! by [`Tuffy::build_engine`], it grounds the program a single time and
//! then hands out any number of
//!
//! * [`Snapshot`]s — immutable `Clone + Send + Sync` views of the
//!   current grounded generation, each answering [`crate::Query`]s from
//!   any thread ([`Snapshot::query`]); and
//! * [`Session`]s — lightweight per-caller handles (warm-start state +
//!   an `Arc` of a snapshot) whose [`Session::apply`] edits fork new
//!   generations copy-on-write without disturbing anyone else.
//!
//! Cloning an `Engine` is one reference-count bump; clones share the
//! grounded store, the generation counter, and the grounding-count
//! instrumentation ([`Engine::groundings_performed`]) that the serve
//! stress suite pins "zero re-grounds after the first build" against.

use crate::config::TuffyConfig;
use crate::pipeline::Tuffy;
use crate::session::Session;
use crate::snapshot::{ground, EngineCounters, Snapshot};
use std::sync::Arc;
use tuffy_mln::evidence::EvidenceSet;
use tuffy_mln::program::MlnProgram;
use tuffy_mln::MlnError;

/// A shared serving engine over one grounded program; see the module
/// docs. Created by [`Tuffy::build_engine`].
#[derive(Clone)]
pub struct Engine {
    base: Snapshot,
}

impl Engine {
    pub(crate) fn build(
        program: MlnProgram,
        evidence: EvidenceSet,
        config: TuffyConfig,
    ) -> Result<Engine, MlnError> {
        let program = Arc::new(program);
        let grounding = Arc::new(ground(&program, &evidence, &config)?);
        let counters = EngineCounters::for_new_engine();
        Ok(Engine {
            base: Snapshot::root(program, evidence, config, grounding, counters),
        })
    }

    /// Wraps a snapshot rebuilt from a store file (see
    /// [`Engine::load`](crate::persist)): same shape as [`Engine::build`]
    /// minus the grounding run it exists to avoid.
    pub(crate) fn from_loaded_parts(base: Snapshot) -> Engine {
        Engine { base }
    }

    /// The engine's base snapshot (generation 0) — the view every new
    /// session starts from. Cheap: one `Arc` bump.
    pub fn snapshot(&self) -> Snapshot {
        self.base.clone()
    }

    /// Opens a lightweight [`Session`] over the engine's base snapshot.
    /// Sessions cost two `Arc` bumps to open — the grounding already
    /// happened when the engine was built — and are independent: one
    /// session's [`Session::apply`] forks a private generation and never
    /// affects the engine or its other sessions.
    pub fn open_session(&self) -> Session {
        Session::from_snapshot(self.base.clone())
    }

    /// The program this engine serves.
    pub fn program(&self) -> &MlnProgram {
        self.base.program()
    }

    /// The base evidence the engine was grounded under.
    pub fn evidence(&self) -> &EvidenceSet {
        self.base.evidence()
    }

    /// The configuration queries run under by default.
    pub fn config(&self) -> &TuffyConfig {
        self.base.config()
    }

    /// Full grounding runs this engine lineage has performed: 1 after
    /// `build_engine`, +1 for every [`Session::apply`] (or
    /// [`crate::Query::given`] fork) that fell outside the incremental
    /// patch fragment. The serve stress suite asserts this stays at 1
    /// while N threads × M queries run — the "ground once, serve many"
    /// invariant, measured rather than assumed.
    pub fn groundings_performed(&self) -> u64 {
        self.base.counters().groundings()
    }

    /// Forks a new engine whose base generation carries `rule_weights`
    /// (one [`Weight`](tuffy_mln::Weight) per program rule, in rule
    /// order) — weight learning's iteration step. The rebuild is
    /// O(clauses) through [`Snapshot::relearn`]: every structural arena,
    /// the partition schedule, and the component analysis are shared
    /// with this engine, no grounding happens
    /// ([`Engine::groundings_performed`] is unchanged), and snapshots or
    /// sessions already handed out keep serving their own generations.
    pub fn relearn(&self, rule_weights: &[tuffy_mln::Weight]) -> Result<Engine, MlnError> {
        Ok(Engine {
            base: self.base.relearn(rule_weights)?,
        })
    }

    /// Marginal-result cache hits served by the engine's base generation
    /// cache set (shared across [`Engine::relearn`] forks; see
    /// [`Snapshot::marginal_cache_hits`]).
    pub fn marginal_cache_hits(&self) -> u64 {
        self.base.marginal_cache_hits()
    }

    /// Generations this engine lineage has created: 1 after
    /// `build_engine` (the base generation), +1 for every
    /// [`Session::apply`] or [`crate::Query::given`] fork that produced
    /// a new generation (incrementally patched *or* re-ground; not
    /// no-op deltas, which share the parent generation).
    ///
    /// Like [`Engine::groundings_performed`] this is **per-engine**
    /// instrumentation, unlike the process-global counter behind
    /// `tuffy_grounder::stats` — suites asserting on it stay meaningful
    /// when the harness runs test files concurrently (e.g. under
    /// `--test-threads=8`), because engines built by other tests cannot
    /// perturb it.
    pub fn generations_created(&self) -> u64 {
        self.base.counters().generations()
    }
}

impl Tuffy {
    /// Builds the shared serving [`Engine`]: parses nothing (that
    /// happened when `self` was built), grounds exactly once, and
    /// returns the `Arc`-shared home of program + grounding + analysis
    /// caches. Clone the engine (or hand out [`Engine::snapshot`] /
    /// [`Engine::open_session`] values) to serve concurrent callers
    /// without ever grounding again.
    pub fn build_engine(&self) -> Result<Engine, MlnError> {
        Engine::build(
            self.program().clone(),
            self.evidence().clone(),
            *self.config(),
        )
    }
}
