//! The top-level entry point: program + evidence + configuration.
//!
//! [`Tuffy`] holds the three inputs of Figure 1 (schema/program,
//! evidence, and the run configuration) and opens [`Session`](crate::session::Session)s over
//! them — the ground-once, query-many pipeline of Appendix B.3,
//! Figure 7. The historical one-shot methods survive as deprecated
//! wrappers over a single-use session.

use crate::config::TuffyConfig;
use crate::result::{MapResult, MarginalResult};
use tuffy_grounder::GroundingResult;
use tuffy_mln::evidence::EvidenceSet;
use tuffy_mln::parser::{parse_evidence, parse_program};
use tuffy_mln::program::MlnProgram;
use tuffy_mln::MlnError;
use tuffy_search::mcsat::McSatParams;
use tuffy_search::Scheduler;

/// A configured Tuffy instance: program + evidence + configuration.
///
/// `Tuffy` is cheap, immutable input state; inference happens in a
/// [`Session`](crate::session::Session) obtained from [`Tuffy::open_session`], which grounds once
/// and then serves repeated [`map()`](crate::session::Session::map) /
/// [`marginal()`](crate::session::Session::marginal)
/// queries with incremental [`apply()`](crate::session::Session::apply) evidence
/// updates.
pub struct Tuffy {
    program: MlnProgram,
    evidence: EvidenceSet,
    config: TuffyConfig,
}

impl Tuffy {
    /// Parses a program and evidence from source text with the default
    /// configuration.
    pub fn from_sources(program_src: &str, evidence_src: &str) -> Result<Tuffy, MlnError> {
        let mut program = parse_program(program_src)?;
        let evidence = parse_evidence(&mut program, evidence_src)?;
        Ok(Tuffy::from_parts(program, evidence))
    }

    /// Wraps an already-built program and evidence set.
    pub fn from_parts(program: MlnProgram, evidence: EvidenceSet) -> Tuffy {
        Tuffy {
            program,
            evidence,
            config: TuffyConfig::default(),
        }
    }

    /// Wraps an already-built program with no evidence.
    pub fn from_program(program: MlnProgram) -> Tuffy {
        Tuffy::from_parts(program, EvidenceSet::new())
    }

    /// Replaces the configuration.
    pub fn with_config(mut self, config: TuffyConfig) -> Tuffy {
        self.config = config;
        self
    }

    /// The underlying program.
    pub fn program(&self) -> &MlnProgram {
        &self.program
    }

    /// The base evidence sessions start from.
    pub fn evidence(&self) -> &EvidenceSet {
        &self.evidence
    }

    /// The active configuration.
    pub fn config(&self) -> &TuffyConfig {
        &self.config
    }

    /// Renders the physical plans (`EXPLAIN`) of every grounding query
    /// under the configured optimizer lesion knobs, without executing
    /// anything. The plans are those the bottom-up grounder would run;
    /// the in-memory architecture grounds top-down and has no plans.
    pub fn explain_grounding(&self) -> Result<String, MlnError> {
        tuffy_grounder::explain_grounding(
            &self.program,
            &self.evidence,
            self.config.grounding,
            &self.config.optimizer,
        )
    }

    /// Renders the partition/bin-packing decisions the scheduler would
    /// make for this program (the partitioning analogue of
    /// [`Tuffy::explain_grounding`]): grounds the program, plans the
    /// schedule, and prints it without running any search.
    pub fn explain_schedule(&self) -> Result<String, MlnError> {
        let grounding = self.ground()?;
        Ok(Scheduler::new(&grounding.mrf, self.config.scheduler_config()).explain())
    }

    /// Grounds the program according to the configured architecture
    /// (without building an engine). Shares the engine's grounding
    /// dispatch, so the two can never disagree.
    pub fn ground(&self) -> Result<GroundingResult, MlnError> {
        crate::snapshot::ground(&self.program, &self.evidence, &self.config)
    }

    /// Runs one-shot MAP inference: grounds, searches, discards the
    /// session state.
    #[deprecated(
        since = "0.2.0",
        note = "open a `Session` (`Tuffy::open_session`) and call `map()`: sessions ground \
                once and warm-start repeated queries instead of re-grounding every call"
    )]
    pub fn map_inference(&self) -> Result<MapResult, MlnError> {
        self.open_session()?.map()
    }

    /// Runs one-shot marginal inference with MC-SAT (Appendix A.5).
    #[deprecated(
        since = "0.2.0",
        note = "build an `Engine` (`Tuffy::build_engine`) and run \
                `engine.snapshot().query(&Query::marginal_all().with_mcsat(params))`: \
                engines ground once instead of re-grounding every call"
    )]
    pub fn marginal_inference(&self, params: &McSatParams) -> Result<MarginalResult, MlnError> {
        self.build_engine()?
            .snapshot()
            .query(&crate::query::Query::marginal_all().with_mcsat(*params))?
            .into_marginal()
            .ok_or_else(|| MlnError::general("marginal query returned a non-marginal answer"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Architecture, PartitionStrategy};
    use tuffy_search::WalkSatParams;

    const PROGRAM: &str = r#"
        *wrote(person, paper)
        *refers(paper, paper)
        cat(paper, category)
        5 cat(p, c1), cat(p, c2) => c1 = c2
        1 wrote(x, p1), wrote(x, p2), cat(p1, c) => cat(p2, c)
        2 cat(p1, c), refers(p1, p2) => cat(p2, c)
    "#;
    const EVIDENCE: &str = r#"
        wrote(Joe, P1)
        wrote(Joe, P2)
        refers(P1, P3)
        cat(P2, DB)
    "#;

    #[test]
    fn map_inference_classifies_papers() {
        let t = Tuffy::from_sources(PROGRAM, EVIDENCE).unwrap();
        let r = t.open_session().unwrap().map().unwrap();
        // The most likely world labels P1 and P3 as DB (cost 0).
        assert!(r.cost.is_zero(), "cost = {}", r.cost);
        let mut rows = r.true_atoms_of("cat").unwrap();
        rows.sort();
        assert_eq!(
            rows,
            vec![
                vec!["P1".to_string(), "DB".to_string()],
                vec!["P3".to_string(), "DB".to_string()]
            ]
        );
        assert!(r.true_atoms_of("unknown_pred").is_none());
    }

    #[test]
    fn architectures_agree_on_quality() {
        let mk = |arch| {
            let mut cfg = TuffyConfig {
                architecture: arch,
                search: WalkSatParams {
                    max_flips: 20_000,
                    ..Default::default()
                },
                ..Default::default()
            };
            if arch == Architecture::RdbmsOnly {
                cfg.search.max_flips = 2_000; // scans are expensive
            }
            Tuffy::from_sources(PROGRAM, EVIDENCE)
                .unwrap()
                .with_config(cfg)
                .open_session()
                .unwrap()
                .map()
                .unwrap()
        };
        let hybrid = mk(Architecture::Hybrid);
        let in_mem = mk(Architecture::InMemory);
        let rdbms = mk(Architecture::RdbmsOnly);
        assert!(hybrid.cost.is_zero());
        assert!(in_mem.cost.is_zero());
        assert!(rdbms.cost.is_zero());
    }

    #[test]
    fn partition_strategies_agree_on_quality() {
        for strategy in [
            PartitionStrategy::None,
            PartitionStrategy::Components,
            PartitionStrategy::Budget(1 << 12),
        ] {
            let cfg = TuffyConfig {
                partitioning: strategy,
                search: WalkSatParams {
                    max_flips: 30_000,
                    ..Default::default()
                },
                ..Default::default()
            };
            let r = Tuffy::from_sources(PROGRAM, EVIDENCE)
                .unwrap()
                .with_config(cfg)
                .open_session()
                .unwrap()
                .map()
                .unwrap();
            assert!(r.cost.is_zero(), "{strategy:?} ended at {}", r.cost);
        }
    }

    #[test]
    fn parallel_components_work() {
        let cfg = TuffyConfig {
            threads: 4,
            ..Default::default()
        };
        let r = Tuffy::from_sources(PROGRAM, EVIDENCE)
            .unwrap()
            .with_config(cfg)
            .open_session()
            .unwrap()
            .map()
            .unwrap();
        assert!(r.cost.is_zero());
    }

    #[test]
    fn marginal_inference_runs() {
        let t = Tuffy::from_sources(PROGRAM, EVIDENCE).unwrap();
        let r = t
            .build_engine()
            .unwrap()
            .snapshot()
            .query(
                &crate::query::Query::marginal_all().with_mcsat(McSatParams {
                    samples: 100,
                    burn_in: 10,
                    sample_sat_steps: 200,
                    ..Default::default()
                }),
            )
            .unwrap()
            .into_marginal()
            .unwrap();
        // cat(P1, DB) should be likely true.
        let p = r.probability_of("cat", &["P1", "DB"]).unwrap();
        assert!(p > 0.5, "P(cat(P1,DB)) = {p}");
        // The report is populated (search time, flips, components).
        assert!(r.report.flips > 0);
        assert!(!r.report.search_time.is_zero());
        assert!(r.report.components >= 1);
    }

    #[test]
    fn report_is_populated() {
        let t = Tuffy::from_sources(PROGRAM, EVIDENCE).unwrap();
        let r = t.open_session().unwrap().map().unwrap();
        assert!(r.report.clauses > 0);
        assert!(r.report.atoms > 0);
        assert!(r.report.components >= 1);
        assert!(r.report.clause_table_bytes > 0);
        assert!(!r.trace.points().is_empty());
    }

    /// The deprecated one-shot wrappers must stay green and match a
    /// fresh session bit for bit.
    #[test]
    #[allow(deprecated)]
    fn deprecated_wrappers_match_sessions() {
        let t = Tuffy::from_sources(PROGRAM, EVIDENCE).unwrap();
        let wrapped = t.map_inference().unwrap();
        let sessioned = t.open_session().unwrap().map().unwrap();
        assert_eq!(format!("{}", wrapped.cost), format!("{}", sessioned.cost));
        assert_eq!(wrapped.true_atoms(), sessioned.true_atoms());
        assert_eq!(wrapped.report.flips, sessioned.report.flips);

        let params = McSatParams {
            samples: 50,
            burn_in: 5,
            sample_sat_steps: 100,
            ..Default::default()
        };
        let wrapped = t.marginal_inference(&params).unwrap();
        let sessioned = t.open_session().unwrap().marginal(&params).unwrap();
        assert_eq!(wrapped.names, sessioned.names);
        for (a, b) in wrapped.marginals.iter().zip(sessioned.marginals.iter()) {
            assert_eq!(a.1, b.1);
        }
    }

    #[test]
    fn repeated_maps_warm_start_and_agree() {
        let t = Tuffy::from_sources(PROGRAM, EVIDENCE).unwrap();
        let mut s = t.open_session().unwrap();
        let first = s.map().unwrap();
        let second = s.map().unwrap();
        assert!(first.cost.is_zero());
        assert!(second.cost.is_zero());
        assert_eq!(first.true_atoms(), second.true_atoms());
        // The optimum is already satisfied: a warm re-map needs no flips.
        assert_eq!(second.report.flips, 0);
    }

    #[test]
    fn session_apply_updates_answers() {
        let t = Tuffy::from_sources(PROGRAM, EVIDENCE).unwrap();
        let mut s = t.open_session().unwrap();
        s.map().unwrap();
        // Assert the active atom cat(P3, DB) false. F3 (weight 2) now
        // penalizes labeling P1 — "if P1 were DB, P3 would be" — which
        // outweighs the weight-1 support for P1, so both labels go.
        let delta = s.parse_delta("!cat(P3, DB)\n").unwrap();
        let report = s.apply(&delta).unwrap();
        assert!(report.incremental, "{:?}", report.reason);
        let r = s.map().unwrap();
        assert!(r.true_atoms_of("cat").unwrap().is_empty());
        assert_eq!(r.cost.hard, 0);
        assert!((r.cost.soft - 1.0).abs() < 1e-9, "cost = {}", r.cost);
        // A from-scratch session over the merged evidence agrees.
        let fresh = Tuffy::from_parts(s.program().clone(), s.evidence().clone())
            .open_session()
            .unwrap()
            .map()
            .unwrap();
        assert_eq!(format!("{}", fresh.cost), format!("{}", r.cost));
        assert_eq!(fresh.true_atoms(), r.true_atoms());
        let text = s.explain();
        assert!(text.contains("incremental patch"), "{text}");
    }

    #[test]
    fn session_apply_falls_back_on_closed_world() {
        let t = Tuffy::from_sources(PROGRAM, EVIDENCE).unwrap();
        let mut s = t.open_session().unwrap();
        let delta = s.parse_delta("wrote(Jake, P3)\n").unwrap();
        let report = s.apply(&delta).unwrap();
        assert!(!report.incremental);
        assert!(report.reason.as_deref().unwrap().contains("closed-world"));
        assert!(s.map().unwrap().cost.is_zero());
    }
}
