//! The end-to-end inference pipeline (Appendix B.3, Figure 7).

use crate::config::{Architecture, PartitionStrategy, TuffyConfig};
use crate::result::{InferenceReport, MapResult, MarginalResult};
use std::time::Instant;
use tuffy_grounder::{ground_bottom_up, ground_top_down, GroundingResult};
use tuffy_mln::parser::{parse_evidence, parse_program};
use tuffy_mln::program::MlnProgram;
use tuffy_mln::MlnError;
use tuffy_mrf::memory::MemoryFootprint;
use tuffy_mrf::ComponentSet;
use tuffy_search::mcsat::{McSat, McSatParams};
use tuffy_search::rdbms_search::RdbmsSearch;
use tuffy_search::{Scheduler, SchedulerConfig, TimeCostTrace, WalkSat};

/// A configured Tuffy instance: program + evidence + configuration.
pub struct Tuffy {
    program: MlnProgram,
    config: TuffyConfig,
}

impl Tuffy {
    /// Parses a program and evidence from source text with the default
    /// configuration.
    pub fn from_sources(program_src: &str, evidence_src: &str) -> Result<Tuffy, MlnError> {
        let mut program = parse_program(program_src)?;
        parse_evidence(&mut program, evidence_src)?;
        Ok(Tuffy {
            program,
            config: TuffyConfig::default(),
        })
    }

    /// Wraps an already-built program.
    pub fn from_program(program: MlnProgram) -> Tuffy {
        Tuffy {
            program,
            config: TuffyConfig::default(),
        }
    }

    /// Replaces the configuration.
    pub fn with_config(mut self, config: TuffyConfig) -> Tuffy {
        self.config = config;
        self
    }

    /// The underlying program.
    pub fn program(&self) -> &MlnProgram {
        &self.program
    }

    /// The active configuration.
    pub fn config(&self) -> &TuffyConfig {
        &self.config
    }

    /// Renders the physical plans (`EXPLAIN`) of every grounding query
    /// under the configured optimizer lesion knobs, without executing
    /// anything. The plans are those the bottom-up grounder would run;
    /// the in-memory architecture grounds top-down and has no plans.
    pub fn explain_grounding(&self) -> Result<String, MlnError> {
        tuffy_grounder::explain_grounding(
            &self.program,
            self.config.grounding,
            &self.config.optimizer,
        )
    }

    /// The scheduler configuration implied by this Tuffy configuration:
    /// `PartitionStrategy::Components` schedules exact connected
    /// components; `PartitionStrategy::Budget` bounds β and bin capacity
    /// by the byte budget.
    fn scheduler_config(&self) -> SchedulerConfig {
        SchedulerConfig {
            threads: self.config.threads,
            mem_budget: match self.config.partitioning {
                PartitionStrategy::Budget(bytes) => Some(bytes),
                _ => None,
            },
            rounds: self.config.partition_rounds,
            search: self.config.search,
        }
    }

    /// Renders the partition/bin-packing decisions the scheduler would
    /// make for this program (the partitioning analogue of
    /// [`Tuffy::explain_grounding`]): grounds the program, plans the
    /// schedule, and prints it without running any search.
    pub fn explain_schedule(&self) -> Result<String, MlnError> {
        let grounding = self.ground()?;
        Ok(Scheduler::new(&grounding.mrf, self.scheduler_config()).explain())
    }

    /// Grounds the program according to the configured architecture.
    pub fn ground(&self) -> Result<GroundingResult, MlnError> {
        match self.config.architecture {
            Architecture::InMemory => ground_top_down(&self.program, self.config.grounding),
            Architecture::Hybrid | Architecture::RdbmsOnly => {
                ground_bottom_up(&self.program, self.config.grounding, &self.config.optimizer)
            }
        }
    }

    /// Runs MAP inference: grounding, then search per the configured
    /// architecture and partitioning strategy.
    pub fn map_inference(&self) -> Result<MapResult, MlnError> {
        let grounding = self.ground()?;
        let mrf = &grounding.mrf;
        let mut report = InferenceReport {
            grounding: grounding.stats.clone(),
            clauses: mrf.clauses().len(),
            atoms: grounding.registry.len(),
            clause_table_bytes: mrf.clause_bytes(),
            ..Default::default()
        };
        // The paper's time axis includes grounding (Figure 3's curves
        // begin when grounding completes).
        let mut trace = TimeCostTrace::with_offset(grounding.stats.wall);
        let search_started = Instant::now();

        let (truth, cost) = match self.config.architecture {
            Architecture::RdbmsOnly => {
                let mut search = RdbmsSearch::new(
                    mrf,
                    self.config.pool_pages,
                    self.config.disk,
                    self.config.search.seed,
                );
                let r = search.run(
                    self.config.search.max_flips,
                    self.config.search.noise,
                    None,
                    Some(&mut trace),
                );
                report.flips = r.flips;
                report.search_time = r.wall + r.simulated_io;
                report.flips_per_sec = r.flips_per_sec;
                report.search_ram = mrf.num_atoms() * 2; // truth arrays only
                report.components = ComponentSet::detect(mrf).nontrivial_count();
                (r.truth, r.cost)
            }
            Architecture::InMemory => {
                // Alchemy-style: monolithic WalkSAT, not component-aware.
                let components = ComponentSet::detect(mrf);
                report.components = components.nontrivial_count();
                report.search_ram = MemoryFootprint::of(mrf).total();
                let mut ws = WalkSat::new(mrf, self.config.search.seed);
                ws.run(&self.config.search, Some(&mut trace));
                report.flips = ws.flips();
                (ws.best_truth().to_vec(), ws.best_cost())
            }
            Architecture::Hybrid => {
                report.components = ComponentSet::detect(mrf).nontrivial_count();
                match self.config.partitioning {
                    PartitionStrategy::None => {
                        report.search_ram = MemoryFootprint::of(mrf).total();
                        let mut ws = WalkSat::new(mrf, self.config.search.seed);
                        ws.run(&self.config.search, Some(&mut trace));
                        report.flips = ws.flips();
                        (ws.best_truth().to_vec(), ws.best_cost())
                    }
                    // The PartitionedInference stage: components (or
                    // budget-bounded Algorithm 3 partitions) → FFD bins →
                    // worker pool → Gauss-Seidel rounds over cut clauses.
                    PartitionStrategy::Components | PartitionStrategy::Budget(_) => {
                        let scheduler = Scheduler::new(mrf, self.scheduler_config());
                        let r = scheduler.run(Some(&mut trace));
                        report.flips = r.flips;
                        report.search_ram = r.peak_partition_bytes;
                        report.partitions = scheduler.schedule().units.len();
                        report.bins = scheduler.schedule().bins.len();
                        report.rounds = r.rounds_run;
                        (r.truth, r.cost)
                    }
                }
            }
        };

        if report.search_time.is_zero() {
            report.search_time = search_started.elapsed();
        }
        if report.flips_per_sec == 0.0 {
            let secs = report.search_time.as_secs_f64();
            report.flips_per_sec = if secs > 0.0 {
                report.flips as f64 / secs
            } else {
                f64::INFINITY
            };
        }
        Ok(MapResult::new(
            &self.program,
            &grounding.registry,
            &truth,
            cost,
            trace,
            report,
        ))
    }

    /// Runs marginal inference with MC-SAT (Appendix A.5). With worker
    /// threads or a memory budget configured, MC-SAT runs per partition
    /// through the scheduler (exact factorization over components; cut
    /// clauses are conditioned on a MAP mode); otherwise one sampler
    /// covers the whole MRF.
    pub fn marginal_inference(&self, params: &McSatParams) -> Result<MarginalResult, MlnError> {
        let grounding = self.ground()?;
        let mrf = &grounding.mrf;
        let partitioned = match self.config.partitioning {
            PartitionStrategy::None => false, // monolithic by request
            PartitionStrategy::Components => self.config.threads > 1,
            PartitionStrategy::Budget(_) => true,
        };
        let probs = if partitioned {
            Scheduler::new(mrf, self.scheduler_config()).run_marginal(params)?
        } else {
            McSat::new(mrf, params.seed)?.marginals(params)
        };
        let mut marginals = Vec::with_capacity(probs.len());
        let mut names = Vec::with_capacity(probs.len());
        for (i, p) in probs.into_iter().enumerate() {
            let ga = grounding.registry.ground_atom(i as u32);
            let rendered = format!(
                "{}({})",
                self.program.predicate_name(ga.predicate),
                ga.args
                    .iter()
                    .map(|s| self.program.symbols.resolve(*s))
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            names.push(rendered);
            marginals.push((ga, p));
        }
        let report = InferenceReport {
            grounding: grounding.stats.clone(),
            clauses: mrf.clauses().len(),
            atoms: grounding.registry.len(),
            clause_table_bytes: mrf.clause_bytes(),
            ..Default::default()
        };
        Ok(MarginalResult {
            marginals,
            names,
            report,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tuffy_search::WalkSatParams;

    const PROGRAM: &str = r#"
        *wrote(person, paper)
        *refers(paper, paper)
        cat(paper, category)
        5 cat(p, c1), cat(p, c2) => c1 = c2
        1 wrote(x, p1), wrote(x, p2), cat(p1, c) => cat(p2, c)
        2 cat(p1, c), refers(p1, p2) => cat(p2, c)
    "#;
    const EVIDENCE: &str = r#"
        wrote(Joe, P1)
        wrote(Joe, P2)
        refers(P1, P3)
        cat(P2, DB)
    "#;

    #[test]
    fn map_inference_classifies_papers() {
        let t = Tuffy::from_sources(PROGRAM, EVIDENCE).unwrap();
        let r = t.map_inference().unwrap();
        // The most likely world labels P1 and P3 as DB (cost 0).
        assert!(r.cost.is_zero(), "cost = {}", r.cost);
        let mut rows = r.true_atoms_of("cat").unwrap();
        rows.sort();
        assert_eq!(
            rows,
            vec![
                vec!["P1".to_string(), "DB".to_string()],
                vec!["P3".to_string(), "DB".to_string()]
            ]
        );
        assert!(r.true_atoms_of("unknown_pred").is_none());
    }

    #[test]
    fn architectures_agree_on_quality() {
        let mk = |arch| {
            let mut cfg = TuffyConfig {
                architecture: arch,
                search: WalkSatParams {
                    max_flips: 20_000,
                    ..Default::default()
                },
                ..Default::default()
            };
            if arch == Architecture::RdbmsOnly {
                cfg.search.max_flips = 2_000; // scans are expensive
            }
            Tuffy::from_sources(PROGRAM, EVIDENCE)
                .unwrap()
                .with_config(cfg)
                .map_inference()
                .unwrap()
        };
        let hybrid = mk(Architecture::Hybrid);
        let in_mem = mk(Architecture::InMemory);
        let rdbms = mk(Architecture::RdbmsOnly);
        assert!(hybrid.cost.is_zero());
        assert!(in_mem.cost.is_zero());
        assert!(rdbms.cost.is_zero());
    }

    #[test]
    fn partition_strategies_agree_on_quality() {
        for strategy in [
            PartitionStrategy::None,
            PartitionStrategy::Components,
            PartitionStrategy::Budget(1 << 12),
        ] {
            let cfg = TuffyConfig {
                partitioning: strategy,
                search: WalkSatParams {
                    max_flips: 30_000,
                    ..Default::default()
                },
                ..Default::default()
            };
            let r = Tuffy::from_sources(PROGRAM, EVIDENCE)
                .unwrap()
                .with_config(cfg)
                .map_inference()
                .unwrap();
            assert!(r.cost.is_zero(), "{strategy:?} ended at {}", r.cost);
        }
    }

    #[test]
    fn parallel_components_work() {
        let cfg = TuffyConfig {
            threads: 4,
            ..Default::default()
        };
        let r = Tuffy::from_sources(PROGRAM, EVIDENCE)
            .unwrap()
            .with_config(cfg)
            .map_inference()
            .unwrap();
        assert!(r.cost.is_zero());
    }

    #[test]
    fn marginal_inference_runs() {
        let t = Tuffy::from_sources(PROGRAM, EVIDENCE).unwrap();
        let r = t
            .marginal_inference(&McSatParams {
                samples: 100,
                burn_in: 10,
                sample_sat_steps: 200,
                ..Default::default()
            })
            .unwrap();
        // cat(P1, DB) should be likely true.
        let p = r.probability_of("cat", &["P1", "DB"]).unwrap();
        assert!(p > 0.5, "P(cat(P1,DB)) = {p}");
    }

    #[test]
    fn report_is_populated() {
        let t = Tuffy::from_sources(PROGRAM, EVIDENCE).unwrap();
        let r = t.map_inference().unwrap();
        assert!(r.report.clauses > 0);
        assert!(r.report.atoms > 0);
        assert!(r.report.components >= 1);
        assert!(r.report.clause_table_bytes > 0);
        assert!(!r.trace.points().is_empty());
    }
}
