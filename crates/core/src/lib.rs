//! # Tuffy — scalable Markov Logic Network inference over an embedded RDBMS
//!
//! A Rust reproduction of *Tuffy: Scaling up Statistical Inference in
//! Markov Logic Networks using an RDBMS* (Niu, Ré, Doan, Shavlik,
//! VLDB 2011). Tuffy performs MAP and marginal inference on Markov Logic
//! Networks with three ideas the paper introduces:
//!
//! 1. **bottom-up grounding** inside an RDBMS, letting a relational
//!    optimizer (join ordering, hash/sort-merge joins, predicate
//!    pushdown) build the ground network orders of magnitude faster than
//!    top-down grounders (§3.1);
//! 2. a **hybrid architecture**: ground in the database, search in
//!    memory, falling back to RDBMS-resident search only when the ground
//!    network exceeds RAM (§3.2);
//! 3. **partitioning**: solve connected components independently —
//!    provably exponentially faster for multi-component networks
//!    (Theorem 3.1) — and split oversized components further, searching
//!    them with a Gauss-Seidel scheme (§3.3–3.4).
//!
//! Because grounding dominates end-to-end time and search is cheap per
//! query, the API separates the two into a three-tier ownership model:
//!
//! * an [`Engine`] ([`Tuffy::build_engine`]) is the long-lived,
//!   `Arc`-shared home of program + grounding + cached analyses. It
//!   grounds **once**;
//! * a [`Snapshot`] ([`Engine::snapshot`]) is a cheap, immutable,
//!   `Clone + Send + Sync` view of one grounded *generation*.
//!   [`Snapshot::query`] answers a [`Query`] from any number of threads
//!   at once, bit-identically to sequential execution;
//! * a [`Session`] ([`Engine::open_session`]) is a lightweight
//!   per-caller handle — warm-start search state plus an `Arc` of a
//!   snapshot. [`Session::apply`] edits evidence by forking a **new
//!   generation copy-on-write** (incremental patch when the delta is in
//!   the provably-exact fragment, re-ground otherwise); readers of the
//!   old generation, on any thread, are never disturbed.
//!
//! What to compute is a first-class [`Query`]: [`Query::map`],
//! [`Query::marginal`] (optionally restricted to predicates),
//! [`Query::top_k`], each optionally conditioned with [`Query::given`]
//! (an ephemeral evidence delta that forks a snapshot without committing
//! anything) and tuned with [`Query::with_search`] /
//! [`Query::with_mcsat`].
//!
//! ## Quickstart
//!
//! ```
//! use tuffy::{Query, Tuffy};
//!
//! let program = r#"
//!     *wrote(person, paper)
//!     *refers(paper, paper)
//!     cat(paper, category)
//!     5 cat(p, c1), cat(p, c2) => c1 = c2
//!     1 wrote(x, p1), wrote(x, p2), cat(p1, c) => cat(p2, c)
//!     2 cat(p1, c), refers(p1, p2) => cat(p2, c)
//! "#;
//! let evidence = r#"
//!     wrote(Joe, P1)
//!     wrote(Joe, P2)
//!     refers(P1, P3)
//!     cat(P2, DB)
//! "#;
//! // Ground once: the engine is the shared home of the grounded program.
//! let engine = Tuffy::from_sources(program, evidence)
//!     .unwrap()
//!     .build_engine()
//!     .unwrap();
//!
//! // Snapshots are cheap, immutable views — query them from any thread.
//! let snapshot = engine.snapshot();
//! let world = snapshot.query(&Query::map()).unwrap().into_map().unwrap();
//! // P1 and P3 inherit Joe's / the citation's DB label:
//! assert_eq!(world.true_atoms_of("cat").unwrap().len(), 2);
//!
//! // Sessions add warm-started repeated queries and evidence edits.
//! let mut session = engine.open_session();
//! session.map().unwrap();
//! // A curator confirms P1's label. `apply` forks a new generation
//! // copy-on-write — the snapshot above keeps reading its own store —
//! // and the next map() warm-starts to infer just P3.
//! let delta = session.parse_delta("cat(P1, DB)").unwrap();
//! let report = session.apply(&delta).unwrap();
//! assert!(report.incremental);
//! let rows = session.map().unwrap().true_atoms_of("cat").unwrap();
//! assert_eq!(rows, vec![vec!["P3".to_string(), "DB".to_string()]]);
//! assert_eq!(engine.groundings_performed(), 1); // ground once, serve many
//! ```
//!
//! ## Migrating from the session-only / one-shot APIs
//!
//! | old call | new call |
//! |---|---|
//! | `tuffy.map_inference()` | `tuffy.build_engine()?.snapshot().query(&Query::map())` |
//! | `tuffy.marginal_inference(&params)` | `…snapshot().query(&Query::marginal_all().with_mcsat(params))` |
//! | `tuffy.open_session()?` | `tuffy.build_engine()?.open_session()` (one engine, many sessions) |
//! | `session.marginal(&params)` | `session.query(&Query::marginal_all().with_mcsat(params))` |
//! | `session.marginal(&cfg_params)` | `session.query(&Query::marginal_all())` (reads `TuffyConfig::mcsat`) |
//! | apply + query + undo | `snapshot.query(&Query::map().given(delta))` (nothing to undo) |
//!
//! `Tuffy::open_session()` keeps working as an engine-of-one
//! (bit-identical to its pre-engine behavior), and the deprecated
//! one-shot wrappers still run; both re-ground per call where an engine
//! grounds once.
//!
//! ## Copy-on-write generations under concurrent readers
//!
//! Every grounded store is a *generation*: an immutable set of
//! `Arc`-shared arenas plus generation-scoped caches (partition
//! schedule, component counts). [`Session::apply`] and [`Query::given`]
//! never mutate the generation they start from — a delta with no
//! grounding effect shares it outright, an in-fragment delta produces a
//! patched copy, everything else re-grounds — so a query holds exactly
//! the generation it began with for its whole execution, no locks
//! involved. Two sessions of one engine that apply different deltas
//! simply own different generations; the engine's base snapshot is
//! unaffected by both.

pub mod config;
pub mod durable;
pub mod engine;
pub mod persist;
pub mod pipeline;
pub mod query;
pub mod result;
pub mod session;
pub mod snapshot;

pub use config::{Architecture, PartitionStrategy, TuffyConfig};
pub use durable::{ApplyOutcome, DurableEngine, DurableError, RecoveryReport, WAL_FILE};
pub use engine::Engine;
pub use persist::GENERATION_FILE;
pub use pipeline::Tuffy;
pub use query::Query;
pub use result::{
    render_atom, InferenceReport, MapResult, MarginalResult, QueryAnswer, TopEntry, TopKResult,
};
pub use session::{ApplyReport, Session};
pub use snapshot::Snapshot;

// Re-exports so downstream users need only this crate.
pub use tuffy_grounder::{GroundingMode, PatchStats};
pub use tuffy_mln::{DeltaOp, EvidenceDelta, EvidenceSet, MlnError, MlnProgram, Weight};
pub use tuffy_mrf::{Cost, RuleOrigin};
pub use tuffy_rdbms::{DiskModel, JoinAlgorithmPolicy, JoinOrderPolicy, OptimizerConfig};
pub use tuffy_search::mcsat::McSatParams;
pub use tuffy_search::{
    MarginalSamples, Schedule, ScheduleResult, Scheduler, SchedulerConfig, TimeCostTrace,
    WalkSatParams,
};
pub use tuffy_store::StoreError;
