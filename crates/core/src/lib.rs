//! # Tuffy — scalable Markov Logic Network inference over an embedded RDBMS
//!
//! A Rust reproduction of *Tuffy: Scaling up Statistical Inference in
//! Markov Logic Networks using an RDBMS* (Niu, Ré, Doan, Shavlik,
//! VLDB 2011). Tuffy performs MAP and marginal inference on Markov Logic
//! Networks with three ideas the paper introduces:
//!
//! 1. **bottom-up grounding** inside an RDBMS, letting a relational
//!    optimizer (join ordering, hash/sort-merge joins, predicate
//!    pushdown) build the ground network orders of magnitude faster than
//!    top-down grounders (§3.1);
//! 2. a **hybrid architecture**: ground in the database, search in
//!    memory, falling back to RDBMS-resident search only when the ground
//!    network exceeds RAM (§3.2);
//! 3. **partitioning**: solve connected components independently —
//!    provably exponentially faster for multi-component networks
//!    (Theorem 3.1) — and split oversized components further, searching
//!    them with a Gauss-Seidel scheme (§3.3–3.4).
//!
//! ## Quickstart
//!
//! ```
//! use tuffy::Tuffy;
//!
//! let program = r#"
//!     *wrote(person, paper)
//!     *refers(paper, paper)
//!     cat(paper, category)
//!     5 cat(p, c1), cat(p, c2) => c1 = c2
//!     1 wrote(x, p1), wrote(x, p2), cat(p1, c) => cat(p2, c)
//!     2 cat(p1, c), refers(p1, p2) => cat(p2, c)
//! "#;
//! let evidence = r#"
//!     wrote(Joe, P1)
//!     wrote(Joe, P2)
//!     refers(P1, P3)
//!     cat(P2, DB)
//! "#;
//! let tuffy = Tuffy::from_sources(program, evidence).unwrap();
//! let result = tuffy.map_inference().unwrap();
//! // P1 and P3 inherit Joe's / the citation's DB label:
//! let labels = result.true_atoms_of("cat").unwrap();
//! assert_eq!(labels.len(), 2);
//! ```

pub mod config;
pub mod pipeline;
pub mod result;

pub use config::{Architecture, PartitionStrategy, TuffyConfig};
pub use pipeline::Tuffy;
pub use result::{InferenceReport, MapResult, MarginalResult};

// Re-exports so downstream users need only this crate.
pub use tuffy_grounder::GroundingMode;
pub use tuffy_mln::{MlnError, MlnProgram, Weight};
pub use tuffy_mrf::Cost;
pub use tuffy_rdbms::{DiskModel, JoinAlgorithmPolicy, JoinOrderPolicy, OptimizerConfig};
pub use tuffy_search::mcsat::McSatParams;
pub use tuffy_search::{
    Schedule, ScheduleResult, Scheduler, SchedulerConfig, TimeCostTrace, WalkSatParams,
};
