//! # Tuffy — scalable Markov Logic Network inference over an embedded RDBMS
//!
//! A Rust reproduction of *Tuffy: Scaling up Statistical Inference in
//! Markov Logic Networks using an RDBMS* (Niu, Ré, Doan, Shavlik,
//! VLDB 2011). Tuffy performs MAP and marginal inference on Markov Logic
//! Networks with three ideas the paper introduces:
//!
//! 1. **bottom-up grounding** inside an RDBMS, letting a relational
//!    optimizer (join ordering, hash/sort-merge joins, predicate
//!    pushdown) build the ground network orders of magnitude faster than
//!    top-down grounders (§3.1);
//! 2. a **hybrid architecture**: ground in the database, search in
//!    memory, falling back to RDBMS-resident search only when the ground
//!    network exceeds RAM (§3.2);
//! 3. **partitioning**: solve connected components independently —
//!    provably exponentially faster for multi-component networks
//!    (Theorem 3.1) — and split oversized components further, searching
//!    them with a Gauss-Seidel scheme (§3.3–3.4).
//!
//! Because grounding dominates end-to-end time, the API is built around
//! long-lived **sessions** that ground once and then serve many queries:
//! [`Session::map`] warm-starts repeated MAP searches,
//! [`Session::marginal`] samples marginals over the same store, and
//! [`Session::apply`] edits evidence between queries — patching the
//! grounding incrementally when the delta allows it.
//!
//! ## Quickstart
//!
//! ```
//! use tuffy::Tuffy;
//!
//! let program = r#"
//!     *wrote(person, paper)
//!     *refers(paper, paper)
//!     cat(paper, category)
//!     5 cat(p, c1), cat(p, c2) => c1 = c2
//!     1 wrote(x, p1), wrote(x, p2), cat(p1, c) => cat(p2, c)
//!     2 cat(p1, c), refers(p1, p2) => cat(p2, c)
//! "#;
//! let evidence = r#"
//!     wrote(Joe, P1)
//!     wrote(Joe, P2)
//!     refers(P1, P3)
//!     cat(P2, DB)
//! "#;
//! // Ground once, then query as often as you like.
//! let tuffy = Tuffy::from_sources(program, evidence).unwrap();
//! let mut session = tuffy.open_session().unwrap();
//!
//! let result = session.map().unwrap();
//! // P1 and P3 inherit Joe's / the citation's DB label:
//! assert_eq!(result.true_atoms_of("cat").unwrap().len(), 2);
//!
//! // A curator confirms P1's label. The session patches its grounded
//! // store instead of re-grounding — P1 becomes evidence, and the next
//! // map() warm-starts from the previous answer to infer just P3.
//! let delta = session.parse_delta("cat(P1, DB)").unwrap();
//! let report = session.apply(&delta).unwrap();
//! assert!(report.incremental);
//! let rows = session.map().unwrap().true_atoms_of("cat").unwrap();
//! assert_eq!(rows, vec![vec!["P3".to_string(), "DB".to_string()]]);
//! ```
//!
//! ## Migrating from the one-shot API
//!
//! `Tuffy::map_inference()` and `Tuffy::marginal_inference(&params)`
//! still work but are deprecated: they open a throwaway session per
//! call, re-grounding every time. Replace
//! `tuffy.map_inference()` with
//! `tuffy.open_session()?.map()` (the first `map()` of a fresh session
//! is bit-for-bit identical), keep the session around for repeated
//! queries, and feed evidence updates through
//! [`Session::apply`] instead of rebuilding the `Tuffy`.

pub mod config;
pub mod pipeline;
pub mod result;
pub mod session;

pub use config::{Architecture, PartitionStrategy, TuffyConfig};
pub use pipeline::Tuffy;
pub use result::{render_atom, InferenceReport, MapResult, MarginalResult};
pub use session::{ApplyReport, Session};

// Re-exports so downstream users need only this crate.
pub use tuffy_grounder::{GroundingMode, PatchStats};
pub use tuffy_mln::{DeltaOp, EvidenceDelta, EvidenceSet, MlnError, MlnProgram, Weight};
pub use tuffy_mrf::Cost;
pub use tuffy_rdbms::{DiskModel, JoinAlgorithmPolicy, JoinOrderPolicy, OptimizerConfig};
pub use tuffy_search::mcsat::McSatParams;
pub use tuffy_search::{
    Schedule, ScheduleResult, Scheduler, SchedulerConfig, TimeCostTrace, WalkSatParams,
};
