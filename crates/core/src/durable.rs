//! The durable serving lineage: base generation + delta WAL.
//!
//! [`Engine::save`]/[`Engine::load`] persist one *base* generation; a
//! serving process that commits incremental applies on top of it would
//! lose them all on a crash. [`DurableEngine`] closes that window with
//! write-ahead logging (see [`tuffy_store::wal`] for the on-disk
//! format):
//!
//! * [`DurableEngine::apply`] forks the new generation in memory,
//!   appends the delta's source text to the WAL, `fsync`s it, and only
//!   then commits the fork and acknowledges — an acknowledged apply is
//!   durable, an unacknowledged one leaves the lineage (and the log)
//!   exactly as before;
//! * [`DurableEngine::open`] loads the base generation, replays every
//!   WAL record above the base's folded sequence, and lands on the
//!   exact pre-crash generation — bit-identically, because delta
//!   parsing (constant interning order) and incremental grounding are
//!   deterministic;
//! * [`DurableEngine::checkpoint`] folds the lineage head into a new
//!   base generation atomically (recording the folded WAL sequence
//!   *inside* the base file), then truncates the log; a crash between
//!   the two steps is safe because replay skips folded records.
//!
//! Unlike per-caller [`Session`]s — whose applies fork private
//! generations — a durable engine is **one shared lineage**, like a
//! database: every committed apply is visible to every subsequent
//! reader ([`DurableEngine::reader`]).

use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::engine::Engine;
use crate::persist::{load_with_folded_seq, save_snapshot};
use crate::session::{ApplyReport, Session};
use crate::snapshot::Snapshot;
use tuffy_mln::program::MlnProgram;
use tuffy_mln::MlnError;
use tuffy_store::wal::{Wal, WalStorage};
use tuffy_store::StoreError;

/// File name of the delta WAL inside a store directory, next to
/// [`GENERATION_FILE`](crate::GENERATION_FILE).
pub const WAL_FILE: &str = "deltas.twl";

/// Why a durable apply was refused. The two classes matter to callers:
/// an invalid delta is the client's fault and costs nothing; a storage
/// failure means the delta was **not** made durable (and was not
/// committed — the lineage still serves the previous generation).
#[derive(Debug)]
pub enum DurableError {
    /// The delta failed to parse or to apply (engine-level rejection).
    Invalid(MlnError),
    /// The WAL append or fsync failed; the apply was rolled back.
    Store(StoreError),
}

impl fmt::Display for DurableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurableError::Invalid(e) => write!(f, "{e}"),
            DurableError::Store(e) => write!(f, "delta not durable: {e}"),
        }
    }
}

impl std::error::Error for DurableError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DurableError::Invalid(e) => Some(e),
            DurableError::Store(e) => Some(e),
        }
    }
}

/// What a committed [`DurableEngine::apply`] did.
#[derive(Debug)]
pub struct ApplyOutcome {
    /// The engine-level apply report (incrementality, patch stats…).
    pub report: ApplyReport,
    /// The delta's WAL sequence number — the durable coordinate of this
    /// commit (generation numbers restart at a reload; sequences don't).
    pub seq: u64,
    /// The lineage head's generation after the apply.
    pub generation: u64,
    /// Whether this apply tripped the checkpoint threshold and folded
    /// the WAL into a new base generation.
    pub checkpointed: bool,
}

/// What [`DurableEngine::open`] recovered.
#[derive(Debug)]
pub struct RecoveryReport {
    /// WAL records replayed on top of the base generation.
    pub replayed: u64,
    /// Records skipped because the base had already folded them (a
    /// crash landed between checkpoint and WAL reset).
    pub skipped: u64,
    /// Whether a torn tail record — an append the crash interrupted
    /// before it was acknowledged — was truncated away.
    pub truncated_tail: bool,
    /// The recovered head's generation.
    pub generation: u64,
    /// The WAL sequence the lineage has committed through.
    pub seq: u64,
    /// Wall-clock time of load + replay.
    pub wall: Duration,
}

/// One crash-durable serving lineage over a store directory. See the
/// [module docs](self).
pub struct DurableEngine {
    engine: Engine,
    /// The lineage's program: extended copy-on-write as committed
    /// deltas intern new constants. Failed applies never touch it —
    /// interning order must match what a future replay will do.
    program: Arc<MlnProgram>,
    head: Snapshot,
    wal: Wal,
    dir: PathBuf,
    checkpoint_every: u64,
    last_checkpoint_error: Option<StoreError>,
}

impl DurableEngine {
    /// Starts a fresh durable lineage in `dir`: saves `engine`'s base
    /// generation and creates an empty WAL. `checkpoint_every` is the
    /// auto-checkpoint threshold in WAL records (0 disables).
    pub fn create(
        engine: Engine,
        dir: &Path,
        checkpoint_every: u64,
    ) -> Result<DurableEngine, StoreError> {
        save_snapshot(&engine.snapshot(), dir, 0)?;
        let (wal, _) = Wal::open(&dir.join(WAL_FILE), 0)?;
        Ok(DurableEngine::assemble(engine, wal, dir, checkpoint_every))
    }

    /// Recovers the durable lineage in `dir`: loads the base
    /// generation, replays the WAL above the base's folded sequence,
    /// truncating a torn tail. Returns the lineage at its exact
    /// pre-crash head plus what recovery found.
    pub fn open(
        dir: &Path,
        checkpoint_every: u64,
    ) -> Result<(DurableEngine, RecoveryReport), StoreError> {
        let (engine, folded_seq) = load_with_folded_seq(dir)?;
        let (wal, report) = Wal::open(&dir.join(WAL_FILE), folded_seq)?;
        DurableEngine::replay(engine, wal, report, dir, checkpoint_every)
    }

    /// [`DurableEngine::create`] with the WAL on a caller-supplied
    /// [`WalStorage`] — the chaos harness's fault-injection seam.
    pub fn create_with_wal(
        engine: Engine,
        dir: &Path,
        storage: Box<dyn WalStorage>,
        checkpoint_every: u64,
    ) -> Result<DurableEngine, StoreError> {
        save_snapshot(&engine.snapshot(), dir, 0)?;
        let (wal, _) = Wal::with_storage(storage, 0)?;
        Ok(DurableEngine::assemble(engine, wal, dir, checkpoint_every))
    }

    /// [`DurableEngine::open`] with the WAL on a caller-supplied
    /// [`WalStorage`].
    pub fn open_with_wal(
        dir: &Path,
        storage: Box<dyn WalStorage>,
        checkpoint_every: u64,
    ) -> Result<(DurableEngine, RecoveryReport), StoreError> {
        let (engine, folded_seq) = load_with_folded_seq(dir)?;
        let (wal, report) = Wal::with_storage(storage, folded_seq)?;
        DurableEngine::replay(engine, wal, report, dir, checkpoint_every)
    }

    fn assemble(engine: Engine, wal: Wal, dir: &Path, checkpoint_every: u64) -> DurableEngine {
        let head = engine.snapshot();
        DurableEngine {
            program: head.program_arc(),
            head,
            engine,
            wal,
            dir: dir.to_path_buf(),
            checkpoint_every,
            last_checkpoint_error: None,
        }
    }

    fn replay(
        engine: Engine,
        wal: Wal,
        found: tuffy_store::WalOpenReport,
        dir: &Path,
        checkpoint_every: u64,
    ) -> Result<(DurableEngine, RecoveryReport), StoreError> {
        let start = Instant::now();
        let mut durable = DurableEngine::assemble(engine, wal, dir, checkpoint_every);
        for record in &found.replay {
            let src = std::str::from_utf8(&record.payload).map_err(|_| {
                StoreError::malformed(format!(
                    "wal record seq {} payload is not UTF-8",
                    record.seq
                ))
            })?;
            durable.fork_head(src).map_err(|e| {
                StoreError::malformed(format!("wal replay of seq {} failed: {e}", record.seq))
            })?;
        }
        let report = RecoveryReport {
            replayed: found.replay.len() as u64,
            skipped: found.skipped,
            truncated_tail: found.truncated,
            generation: durable.head.generation(),
            seq: durable.wal.next_seq() - 1,
            wall: start.elapsed(),
        };
        Ok((durable, report))
    }

    /// Parses `src` and forks the lineage head, committing program and
    /// head only on full success — a failed delta must not perturb
    /// constant-interning order, or replay would diverge.
    fn fork_head(&mut self, src: &str) -> Result<ApplyReport, MlnError> {
        let mut program = self.program.clone();
        let delta = tuffy_mln::parser::parse_delta(Arc::make_mut(&mut program), src)?;
        let (head, report, _) = self.head.fork(&program, &delta)?;
        self.program = program;
        self.head = head;
        Ok(report)
    }

    /// Commits one delta durably: fork in memory, WAL append + `fsync`,
    /// then advance the head. On `Err` nothing moved — the previous
    /// generation is still served and the log holds no trace of the
    /// failed delta.
    pub fn apply(&mut self, src: &str) -> Result<ApplyOutcome, DurableError> {
        // Stage the fork first (cheap to discard); the WAL append is
        // the commit point.
        let staged_program = {
            let mut program = self.program.clone();
            let delta = tuffy_mln::parser::parse_delta(Arc::make_mut(&mut program), src)
                .map_err(DurableError::Invalid)?;
            let (head, report, _) = self
                .head
                .fork(&program, &delta)
                .map_err(DurableError::Invalid)?;
            (program, head, report)
        };
        let (program, head, report) = staged_program;
        let seq = self
            .wal
            .append(src.as_bytes())
            .map_err(DurableError::Store)?;
        self.program = program;
        self.head = head;
        let mut checkpointed = false;
        if self.checkpoint_every > 0 && self.wal.records() >= self.checkpoint_every {
            match self.checkpoint() {
                Ok(_) => checkpointed = true,
                Err(e) => self.last_checkpoint_error = Some(e),
            }
        }
        Ok(ApplyOutcome {
            report,
            seq,
            generation: self.head.generation(),
            checkpointed,
        })
    }

    /// Commits learned rule weights durably: forks the head through
    /// [`Snapshot::relearn`] (O(clauses), structural arenas shared, no
    /// grounding) and immediately folds the new generation into the base
    /// file. A weight change has no WAL-delta representation, so the
    /// checkpoint *is* the commit point — on success the learned weight
    /// columns are on disk and a crash recovers them; on `Err` before
    /// the base save, nothing moved and the lineage still serves the
    /// previous weights. Returns the new base path.
    pub fn relearn(&mut self, rule_weights: &[tuffy_mln::Weight]) -> Result<PathBuf, DurableError> {
        let head = self
            .head
            .relearn(rule_weights)
            .map_err(DurableError::Invalid)?;
        let folded = self.wal.next_seq() - 1;
        let path = save_snapshot(&head, &self.dir, folded).map_err(DurableError::Store)?;
        // The base is durable: advance the head before truncating the
        // log, so a reset failure leaves a fully consistent lineage
        // (replay skips records the base already folded).
        self.program = head.program_arc();
        self.head = head;
        self.wal.reset().map_err(DurableError::Store)?;
        Ok(path)
    }

    /// Folds the lineage head into a new base generation (atomic
    /// replace, folded sequence recorded inside the file), then
    /// truncates the WAL. A crash between the steps is safe: replay
    /// skips records the base already folded.
    pub fn checkpoint(&mut self) -> Result<PathBuf, StoreError> {
        let folded = self.wal.next_seq() - 1;
        let path = save_snapshot(&self.head, &self.dir, folded)?;
        self.wal.reset()?;
        Ok(path)
    }

    /// A fresh read session over the current lineage head. Queries (and
    /// ephemeral `given` forks) run against it without holding the
    /// durable lineage.
    pub fn reader(&self) -> Session {
        Session::from_snapshot(self.head.clone())
    }

    /// The lineage head's generation number (restarts with the process;
    /// [`ApplyOutcome::seq`] is the durable coordinate).
    pub fn generation(&self) -> u64 {
        self.head.generation()
    }

    /// The shared engine instrumentation this lineage forks from.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The store directory this lineage persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The WAL sequence committed through (0 = base only).
    pub fn committed_seq(&self) -> u64 {
        self.wal.next_seq() - 1
    }

    /// Records currently in the WAL (resets to 0 at a checkpoint).
    pub fn wal_records(&self) -> u64 {
        self.wal.records()
    }

    /// WAL size in bytes, header included.
    pub fn wal_len_bytes(&self) -> u64 {
        self.wal.len_bytes()
    }

    /// `fsync`s the WAL (the drain path calls this; appends already
    /// sync themselves).
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.wal.sync()
    }

    /// Takes the error of the most recent *automatic* checkpoint, if it
    /// failed. An auto-checkpoint failure does not fail the apply that
    /// tripped it — the WAL still holds every committed delta — but the
    /// caller should surface it.
    pub fn take_checkpoint_error(&mut self) -> Option<StoreError> {
        self.last_checkpoint_error.take()
    }
}
