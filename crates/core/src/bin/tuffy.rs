//! The Tuffy command-line interface.
//!
//! Mirrors the original system's usage: a program file, an evidence
//! file, and an output file of inferred atoms.
//!
//! ```text
//! tuffy -i prog.mln -e evidence.db [-r result.out] [--marginal] \
//!       [--flips N] [--parallel N] [--no-partition] [--mem-budget BYTES] \
//!       [--partition-rounds N] [--seed N] [--arch hybrid|inmemory|rdbms] \
//!       [--explain] [--explain-schedule] [--join-order auto|program] \
//!       [--join-algo auto|nl] [--no-pushdown]
//! ```
//!
//! `--explain` prints the physical plan (`EXPLAIN`) of every grounding
//! query under the selected lesion knobs and exits without running
//! inference; the three lesion flags mirror the paper's Table 6 study.
//! `--explain-schedule` does the same for the inference scheduler: it
//! prints the partition/bin-packing decisions (`--parallel`,
//! `--mem-budget`, and `--partition-rounds` shape them) and exits.
//! `--threads` and `--budget` are accepted as aliases of `--parallel`
//! and `--mem-budget`.

use std::process::ExitCode;
use tuffy::{
    Architecture, JoinAlgorithmPolicy, JoinOrderPolicy, McSatParams, PartitionStrategy, Tuffy,
    TuffyConfig, WalkSatParams,
};

struct Args {
    program: String,
    evidence: Option<String>,
    result: Option<String>,
    marginal: bool,
    explain: bool,
    explain_schedule: bool,
    flips: u64,
    threads: usize,
    partition: PartitionStrategy,
    partition_rounds: usize,
    seed: u64,
    arch: Architecture,
    join_order: JoinOrderPolicy,
    join_algorithm: JoinAlgorithmPolicy,
    pushdown: bool,
}

fn usage() -> &'static str {
    "usage: tuffy -i <prog.mln> [-e <evidence.db>] [-r <result.out>]\n\
     \x20       [--marginal] [--flips N] [--parallel N] [--no-partition]\n\
     \x20       [--mem-budget BYTES] [--partition-rounds N] [--seed N]\n\
     \x20       [--arch hybrid|inmemory|rdbms] [--explain] [--explain-schedule]\n\
     \x20       [--join-order auto|program] [--join-algo auto|nl]\n\
     \x20       [--no-pushdown]"
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        program: String::new(),
        evidence: None,
        result: None,
        marginal: false,
        explain: false,
        explain_schedule: false,
        flips: 1_000_000,
        threads: 1,
        partition: PartitionStrategy::Components,
        partition_rounds: 3,
        seed: 42,
        arch: Architecture::Hybrid,
        join_order: JoinOrderPolicy::Auto,
        join_algorithm: JoinAlgorithmPolicy::Auto,
        pushdown: true,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} expects a value\n{}", usage()))
        };
        match flag.as_str() {
            "-i" => args.program = value("-i")?,
            "-e" => args.evidence = Some(value("-e")?),
            "-r" => args.result = Some(value("-r")?),
            "--marginal" => args.marginal = true,
            "--explain" => args.explain = true,
            "--explain-schedule" => args.explain_schedule = true,
            "--no-pushdown" => args.pushdown = false,
            "--join-order" => {
                args.join_order = match value("--join-order")?.as_str() {
                    "auto" => JoinOrderPolicy::Auto,
                    "program" => JoinOrderPolicy::Program,
                    other => return Err(format!("unknown join order `{other}`")),
                };
            }
            "--join-algo" => {
                args.join_algorithm = match value("--join-algo")?.as_str() {
                    "auto" => JoinAlgorithmPolicy::Auto,
                    "nl" | "nested-loop" => JoinAlgorithmPolicy::NestedLoopOnly,
                    other => return Err(format!("unknown join algorithm `{other}`")),
                };
            }
            "--no-partition" => args.partition = PartitionStrategy::None,
            "--mem-budget" | "--budget" => {
                let v = value(&flag)?;
                let bytes: usize = v.parse().map_err(|e| format!("{flag}: {e}"))?;
                args.partition = PartitionStrategy::Budget(bytes);
            }
            "--partition-rounds" => {
                args.partition_rounds = value("--partition-rounds")?
                    .parse()
                    .map_err(|e| format!("--partition-rounds: {e}"))?;
            }
            "--flips" => {
                args.flips = value("--flips")?
                    .parse()
                    .map_err(|e| format!("--flips: {e}"))?;
            }
            "--parallel" | "--threads" => {
                args.threads = value(&flag)?.parse().map_err(|e| format!("{flag}: {e}"))?;
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--arch" => {
                args.arch = match value("--arch")?.as_str() {
                    "hybrid" => Architecture::Hybrid,
                    "inmemory" => Architecture::InMemory,
                    "rdbms" => Architecture::RdbmsOnly,
                    other => return Err(format!("unknown architecture `{other}`")),
                };
            }
            "-h" | "--help" => return Err(usage().to_string()),
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
    }
    if args.program.is_empty() {
        return Err(format!("missing -i <prog.mln>\n{}", usage()));
    }
    Ok(args)
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let program_src =
        std::fs::read_to_string(&args.program).map_err(|e| format!("{}: {e}", args.program))?;
    let evidence_src = match &args.evidence {
        Some(path) => std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?,
        None => String::new(),
    };
    let config = TuffyConfig {
        architecture: args.arch,
        partitioning: args.partition,
        partition_rounds: args.partition_rounds,
        threads: args.threads,
        optimizer: tuffy::OptimizerConfig {
            join_order: args.join_order,
            join_algorithm: args.join_algorithm,
            pushdown: args.pushdown,
        },
        search: WalkSatParams {
            max_flips: args.flips,
            seed: args.seed,
            ..Default::default()
        },
        ..Default::default()
    };
    let tuffy = Tuffy::from_sources(&program_src, &evidence_src)
        .map_err(|e| e.to_string())?
        .with_config(config);

    if args.explain_schedule {
        let text = tuffy.explain_schedule().map_err(|e| e.to_string())?;
        match &args.result {
            Some(path) => std::fs::write(path, &text).map_err(|e| format!("{path}: {e}"))?,
            None => print!("{text}"),
        }
        return Ok(());
    }
    if args.explain {
        let text = tuffy.explain_grounding().map_err(|e| e.to_string())?;
        match &args.result {
            Some(path) => std::fs::write(path, &text).map_err(|e| format!("{path}: {e}"))?,
            None => print!("{text}"),
        }
        return Ok(());
    }

    let output = if args.marginal {
        let r = tuffy
            .marginal_inference(&McSatParams {
                seed: args.seed,
                ..Default::default()
            })
            .map_err(|e| e.to_string())?;
        eprintln!(
            "grounded {} clauses over {} atoms in {:?}",
            r.report.clauses, r.report.atoms, r.report.grounding.wall
        );
        let mut out = String::new();
        for (name, (_, p)) in r.names.iter().zip(r.marginals.iter()) {
            out.push_str(&format!("{p:.4}\t{name}\n"));
        }
        out
    } else {
        let r = tuffy.map_inference().map_err(|e| e.to_string())?;
        eprintln!(
            "grounded {} clauses over {} atoms ({} components) in {:?}",
            r.report.clauses, r.report.atoms, r.report.components, r.report.grounding.wall
        );
        eprintln!(
            "search: {} flips in {:?} ({:.0} flips/sec), solution cost {}",
            r.report.flips, r.report.search_time, r.report.flips_per_sec, r.cost
        );
        r.to_text()
    };

    match &args.result {
        Some(path) => std::fs::write(path, &output).map_err(|e| format!("{path}: {e}"))?,
        None => print!("{output}"),
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
