//! Inference configuration.

use tuffy_grounder::GroundingMode;
use tuffy_rdbms::{DiskModel, OptimizerConfig};
use tuffy_search::mcsat::McSatParams;
use tuffy_search::WalkSatParams;

/// Which of the paper's three architectures to run (Appendix B.3,
/// Figure 7).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Architecture {
    /// Tuffy's hybrid: RDBMS grounding + in-memory search (§3.2).
    #[default]
    Hybrid,
    /// The Alchemy baseline: top-down in-memory grounding + monolithic
    /// in-memory WalkSAT, unaware of components.
    InMemory,
    /// `Tuffy-mm`: RDBMS grounding *and* RDBMS-resident search
    /// (Appendix B.2).
    RdbmsOnly,
}

/// How the in-memory search is decomposed (§3.3–3.4).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum PartitionStrategy {
    /// Monolithic WalkSAT over the whole MRF (`Tuffy-p` in the paper).
    None,
    /// Component-aware search: one WalkSAT per connected component with
    /// weighted round-robin budgets (the paper's default `Tuffy`).
    #[default]
    Components,
    /// Component-aware, and components whose search state exceeds the
    /// given byte budget are further split with Algorithm 3 and searched
    /// by Gauss-Seidel iteration (§3.4, Figure 6).
    Budget(usize),
}

/// Full configuration of a [`crate::Tuffy`] instance.
#[derive(Clone, Copy, Debug)]
pub struct TuffyConfig {
    /// Grounding strategy (lazy closure by default).
    pub grounding: GroundingMode,
    /// RDBMS optimizer knobs (all enabled by default; the lesion study of
    /// Table 6 disables them one at a time).
    pub optimizer: OptimizerConfig,
    /// Architecture selection.
    pub architecture: Architecture,
    /// Search decomposition.
    pub partitioning: PartitionStrategy,
    /// Worker threads for per-component search (1 = sequential).
    pub threads: usize,
    /// Worker threads for parallel bottom-up grounding; `0` (the
    /// default) resolves to the machine's available parallelism. The
    /// grounding result is byte-identical at every thread count (see
    /// `tuffy_grounder::bottomup` for the deterministic-merge contract),
    /// so this is purely a performance knob.
    pub ground_threads: usize,
    /// WalkSAT parameters.
    pub search: WalkSatParams,
    /// MC-SAT parameters for marginal queries. Like [`Self::search`] for
    /// MAP, this is the implicit default a marginal query runs under;
    /// [`crate::Query::with_mcsat`] overrides it per query.
    pub mcsat: McSatParams,
    /// Maximum Gauss-Seidel rounds over cut clauses when
    /// `PartitionStrategy::Budget` splits a component (the scheduler
    /// stops early once a round changes nothing, and runs exactly one
    /// round when nothing is cut).
    pub partition_rounds: usize,
    /// Disk model for the RDBMS-resident search (`RdbmsOnly`).
    pub disk: DiskModel,
    /// Buffer-pool pages for the RDBMS-resident search.
    pub pool_pages: usize,
}

impl Default for TuffyConfig {
    fn default() -> Self {
        TuffyConfig {
            grounding: GroundingMode::LazyClosure,
            optimizer: OptimizerConfig::default(),
            architecture: Architecture::Hybrid,
            partitioning: PartitionStrategy::Components,
            threads: 1,
            ground_threads: 0,
            search: WalkSatParams::default(),
            mcsat: McSatParams::default(),
            partition_rounds: 3,
            disk: DiskModel::in_memory(),
            pool_pages: 64,
        }
    }
}

/// Approximate bytes of search state per unit of the partitioner's size
/// metric; re-exported from [`tuffy_mrf::memory`], where the scheduler's
/// budget→β translation lives.
pub use tuffy_mrf::memory::BYTES_PER_SIZE_UNIT;

impl TuffyConfig {
    /// Translates a byte budget into the partitioner's β size bound.
    pub fn beta_for_budget(budget_bytes: usize) -> usize {
        tuffy_mrf::memory::beta_for_budget(budget_bytes)
    }

    /// The scheduler configuration this Tuffy configuration implies:
    /// [`PartitionStrategy::Components`] schedules exact connected
    /// components; [`PartitionStrategy::Budget`] bounds β and bin
    /// capacity by the byte budget.
    pub fn scheduler_config(&self) -> tuffy_search::SchedulerConfig {
        tuffy_search::SchedulerConfig {
            threads: self.threads,
            mem_budget: match self.partitioning {
                PartitionStrategy::Budget(bytes) => Some(bytes),
                _ => None,
            },
            rounds: self.partition_rounds,
            search: self.search,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_the_papers_tuffy() {
        let c = TuffyConfig::default();
        assert_eq!(c.architecture, Architecture::Hybrid);
        assert_eq!(c.partitioning, PartitionStrategy::Components);
        assert_eq!(c.grounding, GroundingMode::LazyClosure);
    }

    #[test]
    fn beta_scales_with_budget() {
        assert!(TuffyConfig::beta_for_budget(48_000) > TuffyConfig::beta_for_budget(4_800));
        assert!(TuffyConfig::beta_for_budget(0) >= 8);
    }
}
