//! Durable engines: [`Engine::save`] / [`Engine::load`].
//!
//! Grounding dominates engine start-up; saving the grounded generation
//! and warm-starting from disk skips it entirely. The heavy lifting —
//! segment file format, checksums, atomic replace, structural codecs for
//! program/evidence/registry/MRF — lives in [`tuffy_store`]; this module
//! contributes the engine-level pieces the store must stay ignorant of:
//! the [`TuffyConfig`] byte codec (the store carries it as an opaque,
//! checksummed segment) and the [`Engine`] assembly on load, which
//! rebuilds the base [`Snapshot`] *without grounding*
//! (so [`Engine::groundings_performed`] reads 0 on a loaded engine).
//!
//! A loaded engine's snapshot answers queries **bit-identically** to the
//! engine that saved it: the store round-trips every atom id and every
//! `f64` bit, and query seeds derive from query parameters, never from
//! how the grounding was obtained.

use crate::config::{Architecture, PartitionStrategy, TuffyConfig};
use crate::engine::Engine;
use crate::snapshot::{EngineCounters, Snapshot};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use tuffy_grounder::GroundingMode;
use tuffy_rdbms::{DiskModel, JoinAlgorithmPolicy, JoinOrderPolicy, OptimizerConfig};
use tuffy_search::mcsat::McSatParams;
use tuffy_search::WalkSatParams;
use tuffy_store::bytes::{ByteReader, ByteWriter};
use tuffy_store::{load_generation, save_generation, StoreError};

/// File name of the generation inside a store directory.
pub const GENERATION_FILE: &str = "generation.tst";

/// Version of the engine-config blob inside the store's `config`
/// segment (independent of the store's container version). Version 2
/// appended the folded WAL sequence; version-1 files (written before
/// the WAL existed) still load, with an implied fold of 0.
const CONFIG_VERSION: u32 = 2;

impl Engine {
    /// Saves this engine's base generation into `dir` (created if
    /// absent) as [`GENERATION_FILE`], atomically: a crash mid-save
    /// leaves the previous generation (or nothing), never a torn file.
    /// Returns the path written.
    pub fn save(&self, dir: &Path) -> Result<PathBuf, StoreError> {
        save_snapshot(&self.snapshot(), dir, 0)
    }

    /// Loads an engine saved by [`Engine::save`] from `dir` — no
    /// re-grounding, no parsing; milliseconds instead of the original
    /// grounding time. The loaded engine's base snapshot answers queries
    /// bit-identically to the saved one's.
    pub fn load(dir: &Path) -> Result<Engine, StoreError> {
        Ok(load_with_folded_seq(dir)?.0)
    }
}

/// Saves `snapshot` as `dir`'s base generation, recording `folded_seq`
/// as the last WAL sequence folded into it (0 for a plain save). The
/// durable engine checkpoints through this.
pub(crate) fn save_snapshot(
    snapshot: &Snapshot,
    dir: &Path,
    folded_seq: u64,
) -> Result<PathBuf, StoreError> {
    std::fs::create_dir_all(dir)
        .map_err(|e| StoreError::io(format!("create store dir {}", dir.display()), e))?;
    let path = dir.join(GENERATION_FILE);
    save_generation(
        &path,
        snapshot.program(),
        snapshot.evidence(),
        snapshot.grounding(),
        &encode_config(snapshot.config(), folded_seq),
    )?;
    Ok(path)
}

/// Loads a base generation plus the WAL sequence it has folded.
pub(crate) fn load_with_folded_seq(dir: &Path) -> Result<(Engine, u64), StoreError> {
    let gen = load_generation(&dir.join(GENERATION_FILE))?;
    let (config, folded_seq) = decode_config(&gen.config)?;
    let engine = Engine::from_loaded_parts(Snapshot::root(
        Arc::new(gen.program),
        gen.evidence,
        config,
        Arc::new(gen.result),
        EngineCounters::for_loaded_engine(),
    ));
    Ok((engine, folded_seq))
}

/// Enum tags. Every `match` below is exhaustive *without* a wildcard on
/// the encode side, so adding a variant upstream is a compile error here
/// — the tag table cannot silently drift.
const GROUNDING_LAZY: u8 = 0;
const GROUNDING_EAGER: u8 = 1;
const ARCH_HYBRID: u8 = 0;
const ARCH_IN_MEMORY: u8 = 1;
const ARCH_RDBMS_ONLY: u8 = 2;
const PART_NONE: u8 = 0;
const PART_COMPONENTS: u8 = 1;
const PART_BUDGET: u8 = 2;
const JO_AUTO: u8 = 0;
const JO_PROGRAM: u8 = 1;
const JA_AUTO: u8 = 0;
const JA_NESTED_LOOP: u8 = 1;

/// Encodes a full [`TuffyConfig`] (plus the folded WAL sequence) as the
/// store's opaque config blob.
pub(crate) fn encode_config(c: &TuffyConfig, folded_seq: u64) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u32(CONFIG_VERSION);
    w.put_u8(match c.grounding {
        GroundingMode::LazyClosure => GROUNDING_LAZY,
        GroundingMode::Eager => GROUNDING_EAGER,
    });
    // Optimizer knobs.
    w.put_u8(match c.optimizer.join_order {
        JoinOrderPolicy::Auto => JO_AUTO,
        JoinOrderPolicy::Program => JO_PROGRAM,
    });
    w.put_u8(match c.optimizer.join_algorithm {
        JoinAlgorithmPolicy::Auto => JA_AUTO,
        JoinAlgorithmPolicy::NestedLoopOnly => JA_NESTED_LOOP,
    });
    w.put_u8(c.optimizer.pushdown as u8);
    w.put_u8(c.optimizer.use_stats as u8);
    w.put_u8(c.optimizer.replan as u8);
    w.put_u64(c.optimizer.mem_budget_bytes as u64);
    w.put_u8(match c.architecture {
        Architecture::Hybrid => ARCH_HYBRID,
        Architecture::InMemory => ARCH_IN_MEMORY,
        Architecture::RdbmsOnly => ARCH_RDBMS_ONLY,
    });
    match c.partitioning {
        PartitionStrategy::None => w.put_u8(PART_NONE),
        PartitionStrategy::Components => w.put_u8(PART_COMPONENTS),
        PartitionStrategy::Budget(bytes) => {
            w.put_u8(PART_BUDGET);
            w.put_u64(bytes as u64);
        }
    }
    w.put_u64(c.threads as u64);
    w.put_u64(c.ground_threads as u64);
    w.put_u64(c.search.max_flips);
    w.put_u32(c.search.max_tries);
    w.put_f64(c.search.noise);
    w.put_u64(c.search.seed);
    w.put_u64(c.mcsat.samples as u64);
    w.put_u64(c.mcsat.burn_in as u64);
    w.put_u64(c.mcsat.sample_sat_steps);
    w.put_f64(c.mcsat.p_anneal);
    w.put_f64(c.mcsat.temperature);
    w.put_u64(c.mcsat.seed);
    w.put_u64(c.partition_rounds as u64);
    w.put_u64(c.disk.read_latency_ns);
    w.put_u64(c.disk.write_latency_ns);
    w.put_u64(c.pool_pages as u64);
    w.put_u64(folded_seq);
    w.finish()
}

/// Decodes the config blob written by [`encode_config`], returning the
/// config and the folded WAL sequence (0 for version-1 blobs, which
/// predate the WAL).
pub(crate) fn decode_config(bytes: &[u8]) -> Result<(TuffyConfig, u64), StoreError> {
    let mut r = ByteReader::new(bytes, "config");
    let version = r.get_u32()?;
    if version != 1 && version != CONFIG_VERSION {
        return Err(StoreError::malformed(format!(
            "unsupported engine-config version {version}"
        )));
    }
    let grounding = match r.get_u8()? {
        GROUNDING_LAZY => GroundingMode::LazyClosure,
        GROUNDING_EAGER => GroundingMode::Eager,
        t => return Err(StoreError::malformed(format!("bad grounding tag {t}"))),
    };
    let join_order = match r.get_u8()? {
        JO_AUTO => JoinOrderPolicy::Auto,
        JO_PROGRAM => JoinOrderPolicy::Program,
        t => return Err(StoreError::malformed(format!("bad join-order tag {t}"))),
    };
    let join_algorithm = match r.get_u8()? {
        JA_AUTO => JoinAlgorithmPolicy::Auto,
        JA_NESTED_LOOP => JoinAlgorithmPolicy::NestedLoopOnly,
        t => return Err(StoreError::malformed(format!("bad join-algorithm tag {t}"))),
    };
    let optimizer = OptimizerConfig {
        join_order,
        join_algorithm,
        pushdown: tag_bool(r.get_u8()?, "pushdown")?,
        use_stats: tag_bool(r.get_u8()?, "use_stats")?,
        replan: tag_bool(r.get_u8()?, "replan")?,
        mem_budget_bytes: r.get_len()?,
    };
    let architecture = match r.get_u8()? {
        ARCH_HYBRID => Architecture::Hybrid,
        ARCH_IN_MEMORY => Architecture::InMemory,
        ARCH_RDBMS_ONLY => Architecture::RdbmsOnly,
        t => return Err(StoreError::malformed(format!("bad architecture tag {t}"))),
    };
    let partitioning = match r.get_u8()? {
        PART_NONE => PartitionStrategy::None,
        PART_COMPONENTS => PartitionStrategy::Components,
        PART_BUDGET => PartitionStrategy::Budget(r.get_len()?),
        t => {
            return Err(StoreError::malformed(format!(
                "bad partition-strategy tag {t}"
            )))
        }
    };
    let config = TuffyConfig {
        grounding,
        optimizer,
        architecture,
        partitioning,
        threads: r.get_len()?,
        ground_threads: r.get_len()?,
        search: WalkSatParams {
            max_flips: r.get_u64()?,
            max_tries: r.get_u32()?,
            noise: r.get_f64()?,
            seed: r.get_u64()?,
        },
        mcsat: McSatParams {
            samples: r.get_len()?,
            burn_in: r.get_len()?,
            sample_sat_steps: r.get_u64()?,
            p_anneal: r.get_f64()?,
            temperature: r.get_f64()?,
            seed: r.get_u64()?,
        },
        partition_rounds: r.get_len()?,
        disk: DiskModel {
            read_latency_ns: r.get_u64()?,
            write_latency_ns: r.get_u64()?,
        },
        pool_pages: r.get_len()?,
    };
    let folded_seq = if version >= 2 { r.get_u64()? } else { 0 };
    r.expect_end()?;
    Ok((config, folded_seq))
}

fn tag_bool(v: u8, what: &str) -> Result<bool, StoreError> {
    match v {
        0 => Ok(false),
        1 => Ok(true),
        _ => Err(StoreError::malformed(format!("{what}: bad bool byte {v}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_round_trips_every_field() {
        let config = TuffyConfig {
            grounding: GroundingMode::Eager,
            optimizer: OptimizerConfig {
                join_order: JoinOrderPolicy::Program,
                join_algorithm: JoinAlgorithmPolicy::NestedLoopOnly,
                pushdown: false,
                use_stats: false,
                replan: false,
                mem_budget_bytes: 123_456,
            },
            architecture: Architecture::RdbmsOnly,
            partitioning: PartitionStrategy::Budget(987_654),
            threads: 7,
            ground_threads: 3,
            search: WalkSatParams {
                max_flips: 12_345,
                max_tries: 9,
                noise: 0.125,
                seed: 0xdead_beef,
            },
            mcsat: McSatParams {
                samples: 11,
                burn_in: 2,
                sample_sat_steps: 333,
                p_anneal: 0.75,
                temperature: 1.5,
                seed: 77,
            },
            partition_rounds: 5,
            disk: DiskModel {
                read_latency_ns: 100,
                write_latency_ns: 200,
            },
            pool_pages: 256,
        };
        let (back, folded) = decode_config(&encode_config(&config, 42)).unwrap();
        assert_eq!(folded, 42);
        assert_eq!(back.grounding, config.grounding);
        assert_eq!(back.optimizer, config.optimizer);
        assert_eq!(back.architecture, config.architecture);
        assert_eq!(back.partitioning, config.partitioning);
        assert_eq!(back.threads, config.threads);
        assert_eq!(back.ground_threads, config.ground_threads);
        assert_eq!(back.search.max_flips, config.search.max_flips);
        assert_eq!(back.search.max_tries, config.search.max_tries);
        assert_eq!(back.search.noise.to_bits(), config.search.noise.to_bits());
        assert_eq!(back.search.seed, config.search.seed);
        assert_eq!(back.mcsat.samples, config.mcsat.samples);
        assert_eq!(
            back.mcsat.p_anneal.to_bits(),
            config.mcsat.p_anneal.to_bits()
        );
        assert_eq!(back.mcsat.seed, config.mcsat.seed);
        assert_eq!(back.partition_rounds, config.partition_rounds);
        assert_eq!(back.disk, config.disk);
        assert_eq!(back.pool_pages, config.pool_pages);
    }

    #[test]
    fn default_config_round_trips() {
        let config = TuffyConfig::default();
        let (back, folded) = decode_config(&encode_config(&config, 0)).unwrap();
        assert_eq!(folded, 0);
        assert_eq!(back.optimizer, config.optimizer);
        assert_eq!(back.architecture, config.architecture);
        assert_eq!(back.partitioning, config.partitioning);
    }

    #[test]
    fn version_1_blob_without_fold_still_decodes() {
        // A pre-WAL (version-1) blob is the version-2 encoding minus the
        // trailing folded-sequence u64, with the version field rewritten.
        let mut bytes = encode_config(&TuffyConfig::default(), 0);
        bytes.truncate(bytes.len() - 8);
        bytes[..4].copy_from_slice(&1u32.to_le_bytes());
        let (back, folded) = decode_config(&bytes).unwrap();
        assert_eq!(folded, 0);
        assert_eq!(back.optimizer, TuffyConfig::default().optimizer);
    }

    #[test]
    fn bad_tag_is_typed_error() {
        let mut bytes = encode_config(&TuffyConfig::default(), 0);
        bytes[4] = 0xff; // grounding tag
        match decode_config(&bytes) {
            Err(StoreError::Malformed { .. }) => {}
            Err(e) => panic!("expected Malformed, got {e}"),
            Ok(_) => panic!("expected Malformed, got a config"),
        }
    }
}
