//! Inference results and reports.

use std::time::Duration;
use tuffy_grounder::{AtomRegistry, GroundingStats};
use tuffy_mln::ground::GroundAtom;
use tuffy_mln::program::MlnProgram;
use tuffy_mrf::Cost;
use tuffy_search::TimeCostTrace;

/// Everything measured during one inference run (feeds the experiment
/// harness).
#[derive(Clone, Debug, Default)]
pub struct InferenceReport {
    /// Grounding statistics.
    pub grounding: GroundingStats,
    /// Ground clauses in the MRF.
    pub clauses: usize,
    /// Unknown atoms in the MRF.
    pub atoms: usize,
    /// Connected components containing at least one clause (Table 1's
    /// "#components").
    pub components: usize,
    /// Partitions the inference scheduler ran (0 when partitioning is
    /// disabled; equals the nontrivial component count without a memory
    /// budget).
    pub partitions: usize,
    /// Memory-budgeted FFD bins the partitions were packed into (0 when
    /// partitioning is disabled).
    pub bins: usize,
    /// Gauss-Seidel rounds the scheduler actually executed (0 when
    /// partitioning is disabled).
    pub rounds: usize,
    /// Total search flips.
    pub flips: u64,
    /// Search wall time (plus simulated I/O for `RdbmsOnly`).
    pub search_time: Duration,
    /// Peak bytes of in-memory search state.
    pub search_ram: usize,
    /// Bytes of the ground clause table (Table 4's "clause table").
    pub clause_table_bytes: usize,
    /// Effective flips per second (Table 3).
    pub flips_per_sec: f64,
}

/// Resolves a ground atom to its display names: the predicate name and
/// one string per argument. The single place atom rendering happens —
/// both result types go through it.
pub(crate) fn atom_names(program: &MlnProgram, ga: &GroundAtom) -> (String, Vec<String>) {
    (
        program.predicate_name(ga.predicate).to_string(),
        ga.args
            .iter()
            .map(|s| program.symbols.resolve(*s).to_string())
            .collect(),
    )
}

/// Renders a ground atom in evidence syntax: `pred(arg1, arg2)`.
pub fn render_atom(program: &MlnProgram, ga: &GroundAtom) -> String {
    let (name, args) = atom_names(program, ga);
    format!("{name}({})", args.join(", "))
}

/// The result of MAP inference: a most-likely world.
#[derive(Debug)]
pub struct MapResult {
    pub(crate) program_true_atoms: Vec<GroundAtom>,
    pub(crate) name_of: Vec<(String, Vec<String>)>,
    pub(crate) known_predicates: Vec<String>,
    /// The cost of the returned world (§2.2, Equation 1).
    pub cost: Cost,
    /// The best-cost-over-time trace (Figures 3–6).
    pub trace: TimeCostTrace,
    /// Run measurements.
    pub report: InferenceReport,
}

impl MapResult {
    pub(crate) fn new(
        program: &MlnProgram,
        registry: &AtomRegistry,
        truth: &[bool],
        cost: Cost,
        trace: TimeCostTrace,
        report: InferenceReport,
    ) -> MapResult {
        let mut atoms = Vec::new();
        let mut names = Vec::new();
        for (i, &t) in truth.iter().enumerate() {
            if !t {
                continue;
            }
            let ga = registry.ground_atom(i as u32);
            names.push(atom_names(program, &ga));
            atoms.push(ga);
        }
        MapResult {
            program_true_atoms: atoms,
            name_of: names,
            known_predicates: program
                .predicates
                .iter()
                .map(|p| program.symbols.resolve(p.name).to_string())
                .collect(),
            cost,
            trace,
            report,
        }
    }

    /// All query atoms inferred true, as ground atoms.
    pub fn true_atoms(&self) -> &[GroundAtom] {
        &self.program_true_atoms
    }

    /// The inferred-true tuples of one predicate, as argument string
    /// vectors (the paper's query model: the system fills in the missing
    /// relation). Returns `None` for a predicate the program never
    /// declared.
    pub fn true_atoms_of(&self, predicate: &str) -> Option<Vec<Vec<String>>> {
        if !self.known_predicates.iter().any(|p| p == predicate) {
            return None;
        }
        Some(
            self.name_of
                .iter()
                .filter(|(name, _)| name == predicate)
                .map(|(_, args)| args.clone())
                .collect(),
        )
    }

    /// Renders the inferred world as evidence-format lines.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (name, args) in &self.name_of {
            out.push_str(name);
            out.push('(');
            out.push_str(&args.join(", "));
            out.push_str(")\n");
        }
        out
    }
}

/// The result of marginal inference.
#[derive(Debug)]
pub struct MarginalResult {
    /// `(atom, P(atom = true))` pairs for every query atom.
    pub marginals: Vec<(GroundAtom, f64)>,
    /// Rendered atom names aligned with `marginals`.
    pub names: Vec<String>,
    /// Run measurements.
    pub report: InferenceReport,
}

impl MarginalResult {
    /// The marginal probability of a specific atom, if it was a query atom.
    pub fn probability_of(&self, predicate: &str, args: &[&str]) -> Option<f64> {
        let rendered = format!("{predicate}({})", args.join(", "));
        self.names
            .iter()
            .position(|n| *n == rendered)
            .map(|i| self.marginals[i].1)
    }
}
