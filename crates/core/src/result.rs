//! Inference results and reports.

use std::time::Duration;
use tuffy_grounder::{AtomRegistry, GroundingStats};
use tuffy_mln::fxhash::FxHashMap;
use tuffy_mln::ground::GroundAtom;
use tuffy_mln::program::MlnProgram;
use tuffy_mrf::Cost;
use tuffy_search::TimeCostTrace;

/// Everything measured during one inference run (feeds the experiment
/// harness).
#[derive(Clone, Debug, Default)]
pub struct InferenceReport {
    /// Grounding statistics.
    pub grounding: GroundingStats,
    /// Ground clauses in the MRF.
    pub clauses: usize,
    /// Unknown atoms in the MRF.
    pub atoms: usize,
    /// Connected components containing at least one clause (Table 1's
    /// "#components").
    pub components: usize,
    /// Partitions the inference scheduler ran (0 when partitioning is
    /// disabled; equals the nontrivial component count without a memory
    /// budget).
    pub partitions: usize,
    /// Memory-budgeted FFD bins the partitions were packed into (0 when
    /// partitioning is disabled).
    pub bins: usize,
    /// Gauss-Seidel rounds the scheduler actually executed (0 when
    /// partitioning is disabled).
    pub rounds: usize,
    /// Total search flips.
    pub flips: u64,
    /// Search wall time (plus simulated I/O for `RdbmsOnly`).
    pub search_time: Duration,
    /// Peak bytes of in-memory search state.
    pub search_ram: usize,
    /// Bytes of the ground clause table (Table 4's "clause table").
    pub clause_table_bytes: usize,
    /// Effective flips per second (Table 3).
    pub flips_per_sec: f64,
}

/// Resolves a ground atom to its display names: the predicate name and
/// one string per argument. The single place atom rendering happens —
/// both result types go through it.
pub(crate) fn atom_names(program: &MlnProgram, ga: &GroundAtom) -> (String, Vec<String>) {
    (
        program.predicate_name(ga.predicate).to_string(),
        ga.args
            .iter()
            .map(|s| program.symbols.resolve(*s).to_string())
            .collect(),
    )
}

/// Renders a ground atom in evidence syntax: `pred(arg1, arg2)`.
pub fn render_atom(program: &MlnProgram, ga: &GroundAtom) -> String {
    let (name, args) = atom_names(program, ga);
    format!("{name}({})", args.join(", "))
}

/// The result of MAP inference: a most-likely world.
#[derive(Debug)]
pub struct MapResult {
    pub(crate) program_true_atoms: Vec<GroundAtom>,
    pub(crate) name_of: Vec<(String, Vec<String>)>,
    pub(crate) known_predicates: Vec<String>,
    /// The cost of the returned world (§2.2, Equation 1).
    pub cost: Cost,
    /// The best-cost-over-time trace (Figures 3–6).
    pub trace: TimeCostTrace,
    /// Run measurements.
    pub report: InferenceReport,
}

impl MapResult {
    pub(crate) fn new(
        program: &MlnProgram,
        registry: &AtomRegistry,
        truth: &[bool],
        cost: Cost,
        trace: TimeCostTrace,
        report: InferenceReport,
    ) -> MapResult {
        let mut atoms = Vec::new();
        let mut names = Vec::new();
        for (i, &t) in truth.iter().enumerate() {
            if !t {
                continue;
            }
            let ga = registry.ground_atom(i as u32);
            names.push(atom_names(program, &ga));
            atoms.push(ga);
        }
        MapResult {
            program_true_atoms: atoms,
            name_of: names,
            known_predicates: program
                .predicates
                .iter()
                .map(|p| program.symbols.resolve(p.name).to_string())
                .collect(),
            cost,
            trace,
            report,
        }
    }

    /// All query atoms inferred true, as ground atoms.
    pub fn true_atoms(&self) -> &[GroundAtom] {
        &self.program_true_atoms
    }

    /// The inferred-true tuples of one predicate, as argument string
    /// vectors (the paper's query model: the system fills in the missing
    /// relation). Returns `None` for a predicate the program never
    /// declared.
    pub fn true_atoms_of(&self, predicate: &str) -> Option<Vec<Vec<String>>> {
        if !self.known_predicates.iter().any(|p| p == predicate) {
            return None;
        }
        Some(
            self.name_of
                .iter()
                .filter(|(name, _)| name == predicate)
                .map(|(_, args)| args.clone())
                .collect(),
        )
    }

    /// Renders the inferred world as evidence-format lines.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (name, args) in &self.name_of {
            out.push_str(name);
            out.push('(');
            out.push_str(&args.join(", "));
            out.push_str(")\n");
        }
        out
    }
}

/// The result of marginal inference.
#[derive(Debug)]
pub struct MarginalResult {
    /// `(atom, P(atom = true))` pairs for every query atom.
    pub marginals: Vec<(GroundAtom, f64)>,
    /// Rendered atom names aligned with `marginals`.
    pub names: Vec<String>,
    /// Run measurements.
    pub report: InferenceReport,
    /// Rendered name → index into `marginals`, built once at
    /// construction so [`MarginalResult::probability_of`] is a hash
    /// lookup instead of a linear scan per call.
    index: FxHashMap<String, usize>,
}

impl MarginalResult {
    /// Assembles a result, indexing the marginals by rendered atom name
    /// up front (repeated [`MarginalResult::probability_of`] lookups
    /// never re-scan the name list).
    pub(crate) fn new(
        marginals: Vec<(GroundAtom, f64)>,
        names: Vec<String>,
        report: InferenceReport,
    ) -> MarginalResult {
        let index = names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), i))
            .collect();
        MarginalResult {
            marginals,
            names,
            report,
            index,
        }
    }

    /// The marginal probability of a specific atom, if it was a query
    /// atom. O(1): answered from the name index built at construction.
    pub fn probability_of(&self, predicate: &str, args: &[&str]) -> Option<f64> {
        let rendered = format!("{predicate}({})", args.join(", "));
        self.index.get(&rendered).map(|&i| self.marginals[i].1)
    }
}

/// One entry of a [`TopKResult`].
#[derive(Clone, Debug)]
pub struct TopEntry {
    /// The ground atom.
    pub atom: GroundAtom,
    /// Its rendered name (`pred(arg, ...)`).
    pub name: String,
    /// Its marginal probability.
    pub probability: f64,
}

/// The `k` most probable atoms of one predicate
/// ([`crate::Query::top_k`]), descending by probability with ties broken
/// deterministically by atom id.
#[derive(Clone, Debug)]
pub struct TopKResult {
    /// The ranked entries (at most `k`; fewer if the predicate has fewer
    /// query atoms).
    pub entries: Vec<TopEntry>,
    /// Run measurements of the underlying marginal pass.
    pub report: InferenceReport,
}

/// The answer to one [`crate::Query`], shaped by the query kind.
#[derive(Debug)]
pub enum QueryAnswer {
    /// Answer to [`crate::Query::map`].
    Map(MapResult),
    /// Answer to [`crate::Query::marginal`].
    Marginal(MarginalResult),
    /// Answer to [`crate::Query::top_k`].
    TopK(TopKResult),
}

impl QueryAnswer {
    /// The MAP result, if this answered a MAP query.
    pub fn as_map(&self) -> Option<&MapResult> {
        match self {
            QueryAnswer::Map(r) => Some(r),
            _ => None,
        }
    }

    /// The marginal result, if this answered a marginal query.
    pub fn as_marginal(&self) -> Option<&MarginalResult> {
        match self {
            QueryAnswer::Marginal(r) => Some(r),
            _ => None,
        }
    }

    /// The top-k result, if this answered a top-k query.
    pub fn as_top_k(&self) -> Option<&TopKResult> {
        match self {
            QueryAnswer::TopK(r) => Some(r),
            _ => None,
        }
    }

    /// Unwraps a MAP answer; `None` for other kinds.
    pub fn into_map(self) -> Option<MapResult> {
        match self {
            QueryAnswer::Map(r) => Some(r),
            _ => None,
        }
    }

    /// Unwraps a marginal answer; `None` for other kinds.
    pub fn into_marginal(self) -> Option<MarginalResult> {
        match self {
            QueryAnswer::Marginal(r) => Some(r),
            _ => None,
        }
    }

    /// Unwraps a top-k answer; `None` for other kinds.
    pub fn into_top_k(self) -> Option<TopKResult> {
        match self {
            QueryAnswer::TopK(r) => Some(r),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tuffy_mln::schema::PredicateId;
    use tuffy_mln::symbols::Symbol;

    fn synthetic(n: u32) -> MarginalResult {
        let marginals: Vec<(GroundAtom, f64)> = (0..n)
            .map(|i| {
                (
                    GroundAtom::new(PredicateId(0), vec![Symbol(i)]),
                    f64::from(i) / f64::from(n),
                )
            })
            .collect();
        let names = (0..n).map(|i| format!("cat(P{i})")).collect();
        MarginalResult::new(marginals, names, InferenceReport::default())
    }

    #[test]
    fn probability_lookup_hits_every_entry() {
        let r = synthetic(100);
        for i in 0..100u32 {
            let p = r.probability_of("cat", &[&format!("P{i}")]).unwrap();
            assert!((p - f64::from(i) / 100.0).abs() < 1e-12);
        }
        assert!(r.probability_of("cat", &["P100"]).is_none());
        assert!(r.probability_of("dog", &["P1"]).is_none());
    }

    /// Repeated lookups must not re-scan the name list: the index is
    /// built once at construction, so lookups keep answering even after
    /// the (public) name vector is emptied.
    #[test]
    fn probability_lookup_does_not_rescan_names() {
        let mut r = synthetic(10);
        assert!(r.probability_of("cat", &["P3"]).is_some());
        r.names.clear();
        let p = r.probability_of("cat", &["P3"]).unwrap();
        assert!((p - 0.3).abs() < 1e-12);
    }
}
