//! Long-lived inference sessions: ground once, serve many queries.
//!
//! Grounding dominates end-to-end inference time (§3.1 — the reason it
//! belongs in a relational engine at all), yet a one-shot API pays it on
//! every call. A [`Session`] amortizes it: [`Tuffy::open_session`]
//! parses and grounds once, then
//!
//! * [`Session::map`] answers repeated MAP queries, warm-starting
//!   WalkSAT from the previous best truth assignment;
//! * [`Session::marginal`] answers marginal queries over the same
//!   grounded store;
//! * [`Session::apply`] edits the evidence between queries — the
//!   grounding is *patched* in place when the delta is in the
//!   provably-exact incremental fragment
//!   ([`tuffy_grounder::incremental`]), and re-ground from the merged
//!   evidence otherwise;
//! * [`Session::explain`] reports the session state: grounding, last
//!   delta outcome, warm-start status, and the partition schedule.
//!
//! The one-shot methods ([`Tuffy::map_inference`],
//! [`Tuffy::marginal_inference`]) survive as deprecated wrappers over a
//! single-use session.

use crate::config::{Architecture, PartitionStrategy, TuffyConfig};
use crate::pipeline::Tuffy;
use crate::result::{render_atom, InferenceReport, MapResult, MarginalResult};
use std::time::{Duration, Instant};
use tuffy_grounder::incremental::{apply_delta_grounding, DeltaOutcome, PatchStats};
use tuffy_grounder::{ground_bottom_up, ground_top_down, GroundingResult};
use tuffy_mln::evidence::{EvidenceDelta, EvidenceSet};
use tuffy_mln::program::MlnProgram;
use tuffy_mln::MlnError;
use tuffy_mrf::memory::MemoryFootprint;
use tuffy_mrf::ComponentSet;
use tuffy_search::mcsat::{McSat, McSatParams};
use tuffy_search::rdbms_search::RdbmsSearch;
use tuffy_search::{Scheduler, TimeCostTrace, WalkSat};

/// What one [`Session::apply`] call did to the grounded store.
#[derive(Clone, Debug)]
pub struct ApplyReport {
    /// Whether the grounding was patched incrementally (`true`) or
    /// rebuilt from the merged evidence (`false`). Deltas with no
    /// grounding effect count as incremental.
    pub incremental: bool,
    /// Why a full re-ground was required, when it was.
    pub reason: Option<String>,
    /// Net evidence changes the delta caused.
    pub changes: usize,
    /// Wall time of the whole apply (evidence edit + patch/re-ground).
    pub wall: Duration,
    /// Patch counters (present only on the incremental path).
    pub patch: Option<PatchStats>,
    /// Ground clauses after the apply.
    pub clauses: usize,
    /// Query atoms after the apply.
    pub atoms: usize,
}

/// A long-lived inference session over one program: evidence, grounding,
/// and warm-start search state. Created by [`Tuffy::open_session`].
pub struct Session {
    program: MlnProgram,
    evidence: EvidenceSet,
    config: TuffyConfig,
    grounding: GroundingResult,
    /// Best truth assignment of the previous `map()` call, aligned with
    /// the current registry; seeds the next search.
    warm: Option<Vec<bool>>,
    /// Cached partition schedule for the current grounding (repeated
    /// maps skip Algorithm 3 + FFD re-planning); invalidated by apply.
    plan: Option<tuffy_search::Schedule>,
    /// Cached nontrivial component count; invalidated by apply.
    components: Option<usize>,
    maps_run: usize,
    last_apply: Option<ApplyReport>,
}

impl Session {
    pub(crate) fn open(
        program: MlnProgram,
        evidence: EvidenceSet,
        config: TuffyConfig,
    ) -> Result<Session, MlnError> {
        let grounding = Self::ground(&program, &evidence, &config)?;
        Ok(Session {
            program,
            evidence,
            config,
            grounding,
            warm: None,
            plan: None,
            components: None,
            maps_run: 0,
            last_apply: None,
        })
    }

    pub(crate) fn ground(
        program: &MlnProgram,
        evidence: &EvidenceSet,
        config: &TuffyConfig,
    ) -> Result<GroundingResult, MlnError> {
        match config.architecture {
            Architecture::InMemory => ground_top_down(program, evidence, config.grounding),
            Architecture::Hybrid | Architecture::RdbmsOnly => {
                ground_bottom_up(program, evidence, config.grounding, &config.optimizer)
            }
        }
    }

    /// The program this session serves.
    pub fn program(&self) -> &MlnProgram {
        &self.program
    }

    /// The current evidence (base evidence plus every applied delta).
    pub fn evidence(&self) -> &EvidenceSet {
        &self.evidence
    }

    /// The active configuration.
    pub fn config(&self) -> &TuffyConfig {
        &self.config
    }

    /// The current grounded store.
    pub fn grounding(&self) -> &GroundingResult {
        &self.grounding
    }

    /// Consumes the session, returning its grounded store.
    pub fn into_grounding(self) -> GroundingResult {
        self.grounding
    }

    /// The outcome of the most recent [`Session::apply`], if any.
    pub fn last_apply(&self) -> Option<&ApplyReport> {
        self.last_apply.as_ref()
    }

    /// Parses delta text (see [`tuffy_mln::parser::parse_delta`] for the
    /// syntax) against this session's program, interning any new
    /// constants.
    pub fn parse_delta(&mut self, src: &str) -> Result<EvidenceDelta, MlnError> {
        tuffy_mln::parser::parse_delta(&mut self.program, src)
    }

    /// Applies an evidence delta to the session: updates the evidence
    /// set, then patches the grounding incrementally when the delta is
    /// in the exact fragment and re-grounds from the merged evidence
    /// otherwise. Warm-start state survives either way (carried through
    /// the atom remap).
    ///
    /// Transactional: on any error (invalid delta, grounding failure)
    /// the session — evidence, grounding, warm state — is unchanged.
    pub fn apply(&mut self, delta: &EvidenceDelta) -> Result<ApplyReport, MlnError> {
        let start = Instant::now();
        // Stage the evidence edit; committed only once the grounding
        // update has succeeded, so a failure cannot desynchronize the
        // evidence from the grounded store.
        let mut staged = self.evidence.clone();
        let changes = staged.apply(&self.program, delta)?;
        let report = match apply_delta_grounding(&self.program, &self.grounding, &changes) {
            DeltaOutcome::Unchanged => ApplyReport {
                incremental: true,
                reason: None,
                changes: changes.len(),
                wall: start.elapsed(),
                patch: None,
                clauses: self.grounding.mrf.clauses().len(),
                atoms: self.grounding.registry.len(),
            },
            DeltaOutcome::Patched(patched) => {
                if let Some(old_warm) = self.warm.take() {
                    let mut warm = vec![false; patched.grounding.registry.len()];
                    for (old_id, new_id) in patched.remap.iter().enumerate() {
                        if let Some(new_id) = new_id {
                            warm[*new_id as usize] = old_warm[old_id];
                        }
                    }
                    self.warm = Some(warm);
                }
                let report = ApplyReport {
                    incremental: true,
                    reason: None,
                    changes: changes.len(),
                    wall: start.elapsed(),
                    patch: Some(patched.stats),
                    clauses: patched.grounding.mrf.clauses().len(),
                    atoms: patched.grounding.registry.len(),
                };
                self.grounding = patched.grounding;
                self.plan = None;
                self.components = None;
                report
            }
            DeltaOutcome::NeedsFullReground { reason } => {
                let fresh = Self::ground(&self.program, &staged, &self.config)?;
                if let Some(old_warm) = self.warm.take() {
                    // Carry search state across by ground-atom identity.
                    let mut warm = vec![false; fresh.registry.len()];
                    for (new_id, pred, args) in fresh.registry.iter() {
                        if let Some(old_id) = self.grounding.registry.get(pred, args) {
                            warm[new_id as usize] = old_warm[old_id as usize];
                        }
                    }
                    self.warm = Some(warm);
                }
                let report = ApplyReport {
                    incremental: false,
                    reason: Some(reason),
                    changes: changes.len(),
                    wall: start.elapsed(),
                    patch: None,
                    clauses: fresh.mrf.clauses().len(),
                    atoms: fresh.registry.len(),
                };
                self.grounding = fresh;
                self.plan = None;
                self.components = None;
                report
            }
        };
        self.evidence = staged;
        self.last_apply = Some(report.clone());
        Ok(report)
    }

    /// Runs MAP inference over the session's grounded store. The first
    /// call searches from the LazySAT all-false state (identical to the
    /// one-shot pipeline); later calls warm-start from the previous best
    /// truth, so small evidence deltas re-converge in a fraction of the
    /// flips.
    pub fn map(&mut self) -> Result<MapResult, MlnError> {
        let grounding = &self.grounding;
        let mrf = &grounding.mrf;
        let mut report = InferenceReport {
            grounding: grounding.stats.clone(),
            clauses: mrf.clauses().len(),
            atoms: grounding.registry.len(),
            clause_table_bytes: mrf.clause_bytes(),
            ..Default::default()
        };
        // The paper's time axis includes grounding (Figure 3's curves
        // begin when grounding completes).
        let mut trace = TimeCostTrace::with_offset(grounding.stats.wall);
        let search_started = Instant::now();
        let init = self
            .warm
            .clone()
            .unwrap_or_else(|| vec![false; mrf.num_atoms()]);
        // Repeated maps over an unchanged store reuse the component
        // analysis; `apply` invalidates it.
        let components = match self.components {
            Some(c) => c,
            None => {
                let c = ComponentSet::detect(mrf).nontrivial_count();
                self.components = Some(c);
                c
            }
        };
        report.components = components;

        let (truth, cost) = match self.config.architecture {
            Architecture::RdbmsOnly => {
                // Tuffy-mm keeps its state in the buffer pool; it always
                // searches cold.
                let mut search = RdbmsSearch::new(
                    mrf,
                    self.config.pool_pages,
                    self.config.disk,
                    self.config.search.seed,
                );
                let r = search.run(
                    self.config.search.max_flips,
                    self.config.search.noise,
                    None,
                    Some(&mut trace),
                );
                report.flips = r.flips;
                report.search_time = r.wall + r.simulated_io;
                report.flips_per_sec = r.flips_per_sec;
                report.search_ram = mrf.num_atoms() * 2; // truth arrays only
                (r.truth, r.cost)
            }
            Architecture::InMemory => {
                // Alchemy-style: monolithic WalkSAT, not component-aware.
                report.search_ram = MemoryFootprint::of(mrf).total();
                let ws = WalkSat::run_from(mrf, init, &self.config.search, Some(&mut trace));
                report.flips = ws.flips();
                (ws.best_truth().to_vec(), ws.best_cost())
            }
            Architecture::Hybrid => {
                match self.config.partitioning {
                    PartitionStrategy::None => {
                        report.search_ram = MemoryFootprint::of(mrf).total();
                        let ws =
                            WalkSat::run_from(mrf, init, &self.config.search, Some(&mut trace));
                        report.flips = ws.flips();
                        (ws.best_truth().to_vec(), ws.best_cost())
                    }
                    // The PartitionedInference stage: components (or
                    // budget-bounded Algorithm 3 partitions) → FFD bins →
                    // worker pool → Gauss-Seidel rounds over cut clauses.
                    PartitionStrategy::Components | PartitionStrategy::Budget(_) => {
                        // The session holds the planned schedule across
                        // queries: repeated maps skip Algorithm 3 + FFD.
                        let cfg = self.config.scheduler_config();
                        let scheduler = match self.plan.take() {
                            Some(plan) => Scheduler::with_schedule(mrf, plan, cfg),
                            None => Scheduler::new(mrf, cfg),
                        };
                        let r = scheduler.run_from(&init, Some(&mut trace));
                        report.flips = r.flips;
                        report.search_ram = r.peak_partition_bytes;
                        report.partitions = scheduler.schedule().units.len();
                        report.bins = scheduler.schedule().bins.len();
                        report.rounds = r.rounds_run;
                        self.plan = Some(scheduler.into_schedule());
                        (r.truth, r.cost)
                    }
                }
            }
        };

        if report.search_time.is_zero() {
            report.search_time = search_started.elapsed();
        }
        if report.flips_per_sec == 0.0 {
            let secs = report.search_time.as_secs_f64();
            report.flips_per_sec = if secs > 0.0 {
                report.flips as f64 / secs
            } else {
                f64::INFINITY
            };
        }
        self.maps_run += 1;
        let result = MapResult::new(
            &self.program,
            &grounding.registry,
            &truth,
            cost,
            trace,
            report,
        );
        self.warm = Some(truth);
        Ok(result)
    }

    /// Runs marginal inference with MC-SAT (Appendix A.5) over the
    /// session's grounded store. With worker threads or a memory budget
    /// configured, MC-SAT runs per partition through the scheduler
    /// (exact factorization over components; cut clauses are
    /// conditioned on a MAP mode); otherwise one sampler covers the
    /// whole MRF.
    pub fn marginal(&self, params: &McSatParams) -> Result<MarginalResult, MlnError> {
        let grounding = &self.grounding;
        let mrf = &grounding.mrf;
        let sample_started = Instant::now();
        let partitioned = match self.config.partitioning {
            PartitionStrategy::None => false, // monolithic by request
            PartitionStrategy::Components => self.config.threads > 1,
            PartitionStrategy::Budget(_) => true,
        };
        let (probs, flips) = if partitioned {
            let samples =
                Scheduler::new(mrf, self.config.scheduler_config()).run_marginal(params)?;
            (samples.probs, samples.flips)
        } else {
            let mut mc = McSat::new(mrf, params.seed)?;
            let probs = mc.marginals(params);
            (probs, mc.flips())
        };
        let search_time = sample_started.elapsed();
        let mut marginals = Vec::with_capacity(probs.len());
        let mut names = Vec::with_capacity(probs.len());
        for (i, p) in probs.into_iter().enumerate() {
            let ga = grounding.registry.ground_atom(i as u32);
            names.push(render_atom(&self.program, &ga));
            marginals.push((ga, p));
        }
        let secs = search_time.as_secs_f64();
        let report = InferenceReport {
            grounding: grounding.stats.clone(),
            clauses: mrf.clauses().len(),
            atoms: grounding.registry.len(),
            clause_table_bytes: mrf.clause_bytes(),
            components: ComponentSet::detect(mrf).nontrivial_count(),
            flips,
            search_time,
            flips_per_sec: if secs > 0.0 {
                flips as f64 / secs
            } else {
                f64::INFINITY
            },
            ..Default::default()
        };
        Ok(MarginalResult {
            marginals,
            names,
            report,
        })
    }

    /// Renders the session state — grounded store, last delta outcome,
    /// warm-start status, and the partition schedule — in the same tree
    /// style as the grounding and scheduling `EXPLAIN` reports.
    pub fn explain(&self) -> String {
        let g = &self.grounding;
        let mut out = format!(
            "Session: {} clauses over {} atoms, {} evidence tuples, {} map call(s)\n",
            g.mrf.clauses().len(),
            g.registry.len(),
            self.evidence.len(),
            self.maps_run,
        );
        out.push_str(&format!(
            "├─ grounding: {:?} ({} closure rounds, {} queries)\n",
            g.stats.wall, g.stats.rounds, g.stats.queries
        ));
        match &self.last_apply {
            None => out.push_str("├─ last delta: none\n"),
            Some(a) if a.incremental => {
                let p = a.patch.unwrap_or_default();
                out.push_str(&format!(
                    "├─ last delta: incremental patch in {:?} ({} change(s): {} clamped, {} satisfied, {} emptied, {} shrunk, {} cascaded, {} orphaned)\n",
                    a.wall,
                    a.changes,
                    p.clamped_atoms,
                    p.satisfied_clauses,
                    p.emptied_clauses,
                    p.shrunk_clauses,
                    p.cascaded_clauses,
                    p.orphaned_atoms,
                ));
            }
            Some(a) => out.push_str(&format!(
                "├─ last delta: full re-ground in {:?} ({})\n",
                a.wall,
                a.reason.as_deref().unwrap_or("unknown reason"),
            )),
        }
        out.push_str(&match &self.warm {
            Some(w) => format!(
                "├─ warm start: {} atoms carried from the last map\n",
                w.len()
            ),
            None => "├─ warm start: cold (no map run yet)\n".to_string(),
        });
        let schedule = Scheduler::new(&g.mrf, self.config.scheduler_config()).explain();
        out.push_str("└─ ");
        out.push_str(&schedule.replace('\n', "\n   "));
        out.truncate(out.trim_end().len());
        out.push('\n');
        out
    }
}

impl Tuffy {
    /// Opens a long-lived [`Session`]: grounds the program once so that
    /// repeated and incrementally-updated queries skip straight to
    /// search. The first `map()` of a fresh session produces exactly
    /// what the one-shot pipeline did.
    pub fn open_session(&self) -> Result<Session, MlnError> {
        Session::open(
            self.program().clone(),
            self.evidence().clone(),
            *self.config(),
        )
    }
}
