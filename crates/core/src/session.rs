//! Lightweight per-caller sessions: warm-start state over a shared
//! snapshot.
//!
//! Since the serving redesign a [`Session`] owns almost nothing: an
//! `Arc` of the [`Snapshot`] it is currently reading, the best truth
//! assignment of its previous `map()` (the warm start), and a
//! copy-on-write handle on the program (grown only if
//! [`Session::parse_delta`] interns new constants). Opening a session
//! from an [`Engine`](crate::Engine) is two reference-count bumps.
//!
//! * [`Session::map`] answers repeated MAP queries, warm-starting
//!   WalkSAT from the previous best truth assignment;
//! * [`Session::query`] runs any [`Query`] (MAP queries warm-start the
//!   same way; marginal/top-k/conditioned queries are stateless);
//! * [`Session::apply`] edits the evidence between queries by *forking a
//!   new generation* — the grounding is patched copy-on-write when the
//!   delta is in the provably-exact incremental fragment
//!   ([`tuffy_grounder::incremental`]) and rebuilt from the merged
//!   evidence otherwise. Either way the previous generation is
//!   untouched: queries in flight on other sessions (or other threads
//!   of this snapshot) keep reading the store they started on;
//! * [`Session::explain`] reports the session state: grounding, last
//!   delta outcome, warm-start status, and the partition schedule.
//!
//! [`Tuffy::open_session`] remains as the engine-of-one spelling: it
//! builds a private [`Engine`](crate::Engine) and opens its single
//! session, bit-identical to the pre-engine behavior.

use crate::pipeline::Tuffy;
use crate::query::Query;
use crate::result::{MapResult, MarginalResult, QueryAnswer};
use crate::snapshot::{ForkWarm, Snapshot};
use std::sync::Arc;
use std::time::Duration;
use tuffy_grounder::incremental::PatchStats;
use tuffy_grounder::GroundingResult;
use tuffy_mln::evidence::{EvidenceDelta, EvidenceSet};
use tuffy_mln::program::MlnProgram;
use tuffy_mln::MlnError;
use tuffy_search::mcsat::McSatParams;
use tuffy_search::Scheduler;

use crate::config::TuffyConfig;

/// What one [`Session::apply`] call did to the grounded store.
#[derive(Clone, Debug)]
pub struct ApplyReport {
    /// Whether the grounding was patched incrementally (`true`) or
    /// rebuilt from the merged evidence (`false`). Deltas with no
    /// grounding effect count as incremental.
    pub incremental: bool,
    /// Why a full re-ground was required, when it was.
    pub reason: Option<String>,
    /// Net evidence changes the delta caused.
    pub changes: usize,
    /// Wall time of the whole apply (evidence edit + patch/re-ground).
    pub wall: Duration,
    /// Patch counters (present only on the incremental path).
    pub patch: Option<PatchStats>,
    /// Ground clauses after the apply.
    pub clauses: usize,
    /// Query atoms after the apply.
    pub atoms: usize,
}

/// A per-caller inference session: warm-start search state plus an
/// `Arc`-shared [`Snapshot`]. Created by
/// [`Engine::open_session`](crate::Engine::open_session) (or the
/// engine-of-one [`Tuffy::open_session`]).
pub struct Session {
    /// Copy-on-write program handle: shared with the snapshot until
    /// [`Session::parse_delta`] needs to intern new constants.
    program: Arc<MlnProgram>,
    snapshot: Snapshot,
    /// Best truth assignment of the previous `map()` call, aligned with
    /// the current registry; seeds the next search.
    warm: Option<Vec<bool>>,
    maps_run: usize,
    last_apply: Option<ApplyReport>,
}

impl Session {
    pub(crate) fn from_snapshot(snapshot: Snapshot) -> Session {
        Session {
            program: snapshot.program_arc(),
            snapshot,
            warm: None,
            maps_run: 0,
            last_apply: None,
        }
    }

    /// The program this session serves.
    pub fn program(&self) -> &MlnProgram {
        &self.program
    }

    /// The current evidence (base evidence plus every applied delta).
    pub fn evidence(&self) -> &EvidenceSet {
        self.snapshot.evidence()
    }

    /// The active configuration.
    pub fn config(&self) -> &TuffyConfig {
        self.snapshot.config()
    }

    /// The current grounded store.
    pub fn grounding(&self) -> &GroundingResult {
        self.snapshot.grounding()
    }

    /// The snapshot this session currently reads — hand clones of it to
    /// other threads to run [`Snapshot::query`] concurrently against
    /// this session's generation.
    pub fn snapshot(&self) -> &Snapshot {
        &self.snapshot
    }

    /// Consumes the session, returning its grounded store. The MRF's
    /// clause and occurrence arenas — the dominant storage — are
    /// `Arc`-shared, so they are never deep-copied; the atom registry
    /// (one map entry per query atom) is copied if other snapshots of
    /// this generation are still alive.
    pub fn into_grounding(self) -> GroundingResult {
        self.snapshot.grounding().clone()
    }

    /// The outcome of the most recent [`Session::apply`], if any.
    pub fn last_apply(&self) -> Option<&ApplyReport> {
        self.last_apply.as_ref()
    }

    /// Parses delta text (see [`tuffy_mln::parser::parse_delta`] for the
    /// syntax) against this session's program, interning any new
    /// constants into the session's private copy-on-write program fork
    /// (the engine's shared program is never mutated).
    pub fn parse_delta(&mut self, src: &str) -> Result<EvidenceDelta, MlnError> {
        tuffy_mln::parser::parse_delta(Arc::make_mut(&mut self.program), src)
    }

    /// Applies an evidence delta to the session by forking a new
    /// generation: the grounding is patched copy-on-write when the delta
    /// is in the exact fragment and rebuilt from the merged evidence
    /// otherwise. The previous generation is untouched — concurrent
    /// readers of [`Session::snapshot`] clones keep their store — and
    /// warm-start state survives either way (carried through the atom
    /// remap).
    ///
    /// Transactional: on any error (invalid delta, grounding failure)
    /// the session — evidence, grounding, warm state — is unchanged.
    pub fn apply(&mut self, delta: &EvidenceDelta) -> Result<ApplyReport, MlnError> {
        let (snapshot, report, warm_carry) = self.snapshot.fork(&self.program, delta)?;
        if let Some(old_warm) = self.warm.take() {
            self.warm = match warm_carry {
                ForkWarm::Unchanged => Some(old_warm),
                ForkWarm::Remap(remap) => {
                    let mut warm = vec![false; snapshot.grounding().registry.len()];
                    for (old_id, new_id) in remap.iter().enumerate() {
                        if let Some(new_id) = new_id {
                            warm[*new_id as usize] = old_warm[old_id];
                        }
                    }
                    Some(warm)
                }
                ForkWarm::Reground => {
                    // Carry search state across by ground-atom identity.
                    let fresh = snapshot.grounding();
                    let old = self.snapshot.grounding();
                    let mut warm = vec![false; fresh.registry.len()];
                    for (new_id, pred, args) in fresh.registry.iter() {
                        if let Some(old_id) = old.registry.get(pred, args) {
                            warm[new_id as usize] = old_warm[old_id as usize];
                        }
                    }
                    Some(warm)
                }
            };
        }
        self.snapshot = snapshot;
        self.last_apply = Some(report.clone());
        Ok(report)
    }

    /// Runs MAP inference over the session's current generation. The
    /// first call searches from the LazySAT all-false state (identical
    /// to the stateless [`Snapshot::query`] path); later calls
    /// warm-start from the previous best truth, so small evidence deltas
    /// re-converge in a fraction of the flips.
    pub fn map(&mut self) -> Result<MapResult, MlnError> {
        let search = self.config().search;
        self.map_with(&search)
    }

    fn map_with(&mut self, search: &tuffy_search::WalkSatParams) -> Result<MapResult, MlnError> {
        let (truth, cost, trace, report) = self.snapshot.execute_map(self.warm.clone(), search);
        self.maps_run += 1;
        let result = MapResult::new(
            &self.program,
            &self.snapshot.grounding().registry,
            &truth,
            cost,
            trace,
            report,
        );
        self.warm = Some(truth);
        Ok(result)
    }

    /// Executes a [`Query`] against the session's current generation.
    /// Plain MAP queries warm-start from (and update) the session's
    /// search state exactly like [`Session::map`]; marginal, top-k, and
    /// [`Query::given`]-conditioned queries are stateless and leave the
    /// session untouched.
    pub fn query(&mut self, query: &Query) -> Result<QueryAnswer, MlnError> {
        if query.is_plain_map() {
            let search = query.search.unwrap_or(self.config().search);
            return Ok(QueryAnswer::Map(self.map_with(&search)?));
        }
        if let Some(delta) = query.given_delta() {
            // Fork with the *session's* program, not the snapshot's:
            // `parse_delta` may have interned constants into the
            // session's copy-on-write fork that the snapshot's program
            // has never seen.
            let (fork, _, _) = self.snapshot.fork(&self.program, delta)?;
            return fork.answer(query);
        }
        self.snapshot.query(query)
    }

    /// Runs marginal inference with MC-SAT (Appendix A.5) over the
    /// session's current generation.
    #[deprecated(
        since = "0.3.0",
        note = "run a query instead: `session.query(&Query::marginal_all().with_mcsat(params))` — \
                or omit `with_mcsat` to read `TuffyConfig::mcsat` implicitly, the same way MAP \
                queries read `TuffyConfig::search`"
    )]
    pub fn marginal(&self, params: &McSatParams) -> Result<MarginalResult, MlnError> {
        let (probs, report) = self.snapshot.execute_marginal(params)?;
        let registry = &self.snapshot.grounding().registry;
        let mut marginals = Vec::with_capacity(probs.len());
        let mut names = Vec::with_capacity(probs.len());
        for (i, p) in probs.into_iter().enumerate() {
            let ga = registry.ground_atom(i as u32);
            names.push(crate::result::render_atom(&self.program, &ga));
            marginals.push((ga, p));
        }
        Ok(MarginalResult::new(marginals, names, report))
    }

    /// Renders the session state — grounded store, generation, last
    /// delta outcome, warm-start status, and the partition schedule — in
    /// the same tree style as the grounding and scheduling `EXPLAIN`
    /// reports.
    pub fn explain(&self) -> String {
        let g = self.snapshot.grounding();
        let mut out = format!(
            "Session: {} clauses over {} atoms, {} evidence tuples, {} map call(s)\n",
            g.mrf.clauses().len(),
            g.registry.len(),
            self.evidence().len(),
            self.maps_run,
        );
        out.push_str(&format!(
            "├─ generation: {} ({} grounding run(s) in this engine lineage)\n",
            self.snapshot.generation(),
            self.snapshot.counters().groundings(),
        ));
        out.push_str(&format!(
            "├─ grounding: {:?} ({} closure rounds, {} queries)\n",
            g.stats.wall, g.stats.rounds, g.stats.queries
        ));
        match &self.last_apply {
            None => out.push_str("├─ last delta: none\n"),
            Some(a) if a.incremental => {
                let p = a.patch.unwrap_or_default();
                out.push_str(&format!(
                    "├─ last delta: incremental patch in {:?} ({} change(s): {} clamped, {} satisfied, {} emptied, {} shrunk, {} cascaded, {} orphaned)\n",
                    a.wall,
                    a.changes,
                    p.clamped_atoms,
                    p.satisfied_clauses,
                    p.emptied_clauses,
                    p.shrunk_clauses,
                    p.cascaded_clauses,
                    p.orphaned_atoms,
                ));
            }
            Some(a) => out.push_str(&format!(
                "├─ last delta: full re-ground in {:?} ({})\n",
                a.wall,
                a.reason.as_deref().unwrap_or("unknown reason"),
            )),
        }
        out.push_str(&match &self.warm {
            Some(w) => format!(
                "├─ warm start: {} atoms carried from the last map\n",
                w.len()
            ),
            None => "├─ warm start: cold (no map run yet)\n".to_string(),
        });
        let schedule = Scheduler::with_schedule(
            &g.mrf,
            self.snapshot.schedule(),
            self.config().scheduler_config(),
        )
        .explain();
        out.push_str("└─ ");
        out.push_str(&schedule.replace('\n', "\n   "));
        out.truncate(out.trim_end().len());
        out.push('\n');
        out
    }
}

impl Tuffy {
    /// Opens a long-lived [`Session`]: grounds the program once so that
    /// repeated and incrementally-updated queries skip straight to
    /// search. The first `map()` of a fresh session produces exactly
    /// what the one-shot pipeline did.
    ///
    /// **Deprecation note:** this is now sugar for an engine of one —
    /// `tuffy.build_engine()?.open_session()`, bit-identical to the
    /// pre-engine behavior. Prefer [`Tuffy::build_engine`] when more
    /// than one caller (or thread) will query the same program: the
    /// engine grounds once and serves any number of sessions and
    /// [`Snapshot`]s concurrently, where repeated `open_session()` calls
    /// on `Tuffy` re-ground every time.
    pub fn open_session(&self) -> Result<Session, MlnError> {
        Ok(self.build_engine()?.open_session())
    }
}
