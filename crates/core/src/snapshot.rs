//! Immutable, shareable views of one grounded generation.
//!
//! A [`Snapshot`] is the unit of concurrency in the serving API: a
//! cheap (`Clone + Send + Sync`) handle onto one *generation* of the
//! grounded store — program, evidence, MRF, registry — plus lazily
//! built, generation-scoped analysis caches (the partition
//! [`Schedule`], the component count). Snapshots never mutate:
//! [`crate::Session::apply`] and [`crate::Query::given`] produce a *new*
//! generation copy-on-write (sharing the old generation's `Arc`-backed
//! arenas whenever the delta leaves them untouched), so any number of
//! in-flight queries keep reading the generation they started on.
//!
//! [`Snapshot::query`] is therefore safe to call from many threads at
//! once, and — because every query's seeds derive from its parameters,
//! never from execution order — concurrent executions are bit-identical
//! to sequential ones (pinned by the serve stress suite).

use crate::config::{Architecture, PartitionStrategy, TuffyConfig};
use crate::query::{Query, QueryKind};
use crate::result::{
    render_atom, InferenceReport, MapResult, MarginalResult, QueryAnswer, TopEntry, TopKResult,
};
use crate::session::ApplyReport;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;
use tuffy_grounder::incremental::{apply_delta_grounding, DeltaOutcome};
use tuffy_grounder::{ground_bottom_up_threaded, ground_top_down, GroundingResult};
use tuffy_mln::evidence::{EvidenceDelta, EvidenceSet};
use tuffy_mln::fxhash::FxHashMap;
use tuffy_mln::program::MlnProgram;
use tuffy_mln::{MlnError, Weight};
use tuffy_mrf::memory::MemoryFootprint;
use tuffy_mrf::{AtomId, ComponentSet, Cost};
use tuffy_search::mcsat::{McSat, McSatParams};
use tuffy_search::rdbms_search::RdbmsSearch;
use tuffy_search::{
    MarginalSamples, Schedule, Scheduler, SchedulerConfig, TimeCostTrace, WalkSat, WalkSatParams,
};

/// Grounds `program` under `evidence` according to the configured
/// architecture — the single grounding dispatch every path (engine
/// build, session re-ground, one-shot pipeline) goes through.
pub(crate) fn ground(
    program: &MlnProgram,
    evidence: &EvidenceSet,
    config: &TuffyConfig,
) -> Result<GroundingResult, MlnError> {
    match config.architecture {
        Architecture::InMemory => ground_top_down(program, evidence, config.grounding),
        Architecture::Hybrid | Architecture::RdbmsOnly => ground_bottom_up_threaded(
            program,
            evidence,
            config.grounding,
            &config.optimizer,
            resolve_ground_threads(config.ground_threads),
        ),
    }
}

/// Resolves the configured grounding thread count: `0` means "use the
/// machine's available parallelism".
pub(crate) fn resolve_ground_threads(configured: usize) -> usize {
    if configured > 0 {
        configured
    } else {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    }
}

/// Counters shared by every snapshot descended from one engine:
/// generation ids (so forked generations stay distinguishable) and the
/// number of full grounding runs the engine lineage has paid for — the
/// instrumentation behind the "ground once, serve many" claim.
#[derive(Debug)]
pub(crate) struct EngineCounters {
    /// Next unassigned generation id.
    generations: AtomicU64,
    /// Full grounding runs performed by this engine lineage.
    groundings: AtomicU64,
}

impl EngineCounters {
    /// Fresh counters for a newly built engine: generation 0 exists and
    /// one grounding run paid for it.
    pub(crate) fn for_new_engine() -> Arc<EngineCounters> {
        Arc::new(EngineCounters {
            generations: AtomicU64::new(1),
            groundings: AtomicU64::new(1),
        })
    }

    /// Counters for an engine re-hydrated from a store file: its base
    /// generation exists but *no* grounding run was paid for — the whole
    /// point of loading. [`crate::Engine::groundings_performed`] reads 0
    /// until a session delta forces a re-ground.
    pub(crate) fn for_loaded_engine() -> Arc<EngineCounters> {
        Arc::new(EngineCounters {
            generations: AtomicU64::new(1),
            groundings: AtomicU64::new(0),
        })
    }

    fn next_generation(&self) -> u64 {
        self.generations.fetch_add(1, Ordering::Relaxed)
    }

    fn record_grounding(&self) {
        self.groundings.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn groundings(&self) -> u64 {
        self.groundings.load(Ordering::Relaxed)
    }

    pub(crate) fn generations(&self) -> u64 {
        self.generations.load(Ordering::Relaxed)
    }
}

/// How a [`Snapshot::fork`] caller should carry warm-start search state
/// across the generation boundary.
pub(crate) enum ForkWarm {
    /// Atom ids are unchanged; warm state carries verbatim.
    Unchanged,
    /// The grounding was patched: old atom id → new atom id (`None` for
    /// clamped/orphaned atoms).
    Remap(Vec<Option<AtomId>>),
    /// The grounding was rebuilt from scratch; carry state by
    /// ground-atom identity against the old registry.
    Reground,
}

/// Lazily built analyses of one grounded generation — the "schedule
/// cache keyed by generation". Held behind an `Arc` so every snapshot
/// of the same generation (including forks whose delta left the store
/// untouched) shares one set of cells: whoever computes first, everyone
/// benefits, regardless of fork timing.
#[derive(Default)]
struct GenerationCaches {
    /// Partition schedule, planned on first use.
    schedule: OnceLock<Arc<Schedule>>,
    /// Nontrivial component count, detected on first use.
    components: OnceLock<usize>,
    /// Marginal-sampling results keyed on `(generation, McSatParams
    /// fingerprint)`. Marginal inference is deterministic in (generation,
    /// params), so a repeat query — the weight-learning loop re-issues
    /// identical ones every iteration — returns the cached samples
    /// instead of re-sampling. The generation is part of the key because
    /// [`Snapshot::relearn`] forks share this cache set (their structural
    /// analyses stay valid) while their weights — and thus marginals — do
    /// not carry over.
    marginals: Mutex<FxHashMap<(u64, u64), Arc<MarginalSamples>>>,
    /// Marginal cache hits served (see [`Snapshot::marginal_cache_hits`]).
    marginal_hits: AtomicU64,
}

/// FNV-style fingerprint over every MC-SAT parameter — the query half of
/// the marginal cache key.
fn mcsat_fingerprint(p: &McSatParams) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for v in [
        p.samples as u64,
        p.burn_in as u64,
        p.sample_sat_steps,
        p.p_anneal.to_bits(),
        p.temperature.to_bits(),
        p.seed,
    ] {
        h ^= v;
        h = h.wrapping_mul(0x1_0000_0000_01b3);
    }
    h
}

struct SnapshotInner {
    program: Arc<MlnProgram>,
    evidence: EvidenceSet,
    config: TuffyConfig,
    grounding: Arc<GroundingResult>,
    generation: u64,
    counters: Arc<EngineCounters>,
    /// Analysis caches of this generation; a new generation starts with
    /// fresh empty cells, same-generation snapshots share one set.
    caches: Arc<GenerationCaches>,
}

/// An immutable view of one grounded generation; see the module docs.
///
/// Cloning is cheap (one `Arc` bump) and clones share the grounded store
/// *and* its analysis caches. Obtained from
/// [`crate::Engine::snapshot`] or [`crate::Session::snapshot`].
#[derive(Clone)]
pub struct Snapshot {
    inner: Arc<SnapshotInner>,
}

impl Snapshot {
    pub(crate) fn root(
        program: Arc<MlnProgram>,
        evidence: EvidenceSet,
        config: TuffyConfig,
        grounding: Arc<GroundingResult>,
        counters: Arc<EngineCounters>,
    ) -> Snapshot {
        Snapshot {
            inner: Arc::new(SnapshotInner {
                program,
                evidence,
                config,
                grounding,
                generation: 0,
                counters,
                caches: Arc::new(GenerationCaches::default()),
            }),
        }
    }

    /// The generation this snapshot views. Generation ids are unique per
    /// engine lineage *per grounded store*: an apply whose delta leaves
    /// the grounding untouched keeps the generation (and its caches),
    /// anything that patches or rebuilds the store advances it.
    pub fn generation(&self) -> u64 {
        self.inner.generation
    }

    /// The program this generation was grounded under.
    pub fn program(&self) -> &MlnProgram {
        &self.inner.program
    }

    pub(crate) fn program_arc(&self) -> Arc<MlnProgram> {
        self.inner.program.clone()
    }

    /// The evidence this generation reflects.
    pub fn evidence(&self) -> &EvidenceSet {
        &self.inner.evidence
    }

    /// The configuration queries run under by default.
    pub fn config(&self) -> &TuffyConfig {
        &self.inner.config
    }

    /// The grounded store of this generation.
    pub fn grounding(&self) -> &GroundingResult {
        &self.inner.grounding
    }

    pub(crate) fn counters(&self) -> &Arc<EngineCounters> {
        &self.inner.counters
    }

    /// The partition schedule of this generation, planned once and
    /// shared by every query (and every clone) of the generation.
    pub(crate) fn schedule(&self) -> Arc<Schedule> {
        self.inner
            .caches
            .schedule
            .get_or_init(|| {
                Arc::new(Schedule::plan(
                    &self.inner.grounding.mrf,
                    self.scheduler_config(&self.inner.config.search).mem_budget,
                ))
            })
            .clone()
    }

    /// Nontrivial connected components of this generation's MRF,
    /// detected once.
    pub(crate) fn components(&self) -> usize {
        *self
            .inner
            .caches
            .components
            .get_or_init(|| ComponentSet::detect(&self.inner.grounding.mrf).nontrivial_count())
    }

    fn scheduler_config(&self, search: &WalkSatParams) -> SchedulerConfig {
        let config = &self.inner.config;
        SchedulerConfig {
            threads: config.threads,
            mem_budget: match config.partitioning {
                PartitionStrategy::Budget(bytes) => Some(bytes),
                _ => None,
            },
            rounds: config.partition_rounds,
            search: *search,
        }
    }

    /// Executes `query` against this generation. Pure with respect to
    /// the snapshot — no session state, no warm starts — so it is safe
    /// to call from any number of threads at once, and a given
    /// `(snapshot, query)` pair always produces bit-identical results
    /// regardless of what runs concurrently.
    ///
    /// A [`Query::given`] delta must reference constants known to
    /// *this snapshot's* program (any ground atom obtained from it, or
    /// parsed against the program it was built from). Deltas that
    /// intern new constants belong on [`crate::Session::query`], whose
    /// copy-on-write program fork carries them.
    pub fn query(&self, query: &Query) -> Result<QueryAnswer, MlnError> {
        match &query.given {
            Some(delta) => {
                let (fork, _, _) = self.fork(&self.inner.program, delta)?;
                fork.answer(query)
            }
            None => self.answer(query),
        }
    }

    /// Answers `query` against this snapshot, conditioning delta already
    /// applied.
    pub(crate) fn answer(&self, query: &Query) -> Result<QueryAnswer, MlnError> {
        let config = &self.inner.config;
        match &query.kind {
            QueryKind::Map => {
                let search = query.search.unwrap_or(config.search);
                let (truth, cost, trace, report) = self.execute_map(None, &search);
                Ok(QueryAnswer::Map(MapResult::new(
                    &self.inner.program,
                    &self.inner.grounding.registry,
                    &truth,
                    cost,
                    trace,
                    report,
                )))
            }
            QueryKind::Marginal(predicates) => {
                let params = query.mcsat.unwrap_or(config.mcsat);
                let (probs, report) = self.execute_marginal(&params)?;
                let keep = self.predicate_filter(predicates)?;
                let mut marginals = Vec::new();
                let mut names = Vec::new();
                for (i, p) in probs.into_iter().enumerate() {
                    let ga = self.inner.grounding.registry.ground_atom(i as u32);
                    if let Some(keep) = &keep {
                        if !keep.contains(&ga.predicate.0) {
                            continue;
                        }
                    }
                    names.push(render_atom(&self.inner.program, &ga));
                    marginals.push((ga, p));
                }
                Ok(QueryAnswer::Marginal(MarginalResult::new(
                    marginals, names, report,
                )))
            }
            QueryKind::TopK { predicate, k } => {
                let params = query.mcsat.unwrap_or(config.mcsat);
                let (probs, report) = self.execute_marginal(&params)?;
                let pred = self
                    .inner
                    .program
                    .predicate_by_name(predicate)
                    .ok_or_else(|| {
                        MlnError::general(format!("unknown predicate `{predicate}` in top-k query"))
                    })?;
                let mut ranked: Vec<(u32, f64)> = probs
                    .into_iter()
                    .enumerate()
                    .map(|(i, p)| (i as u32, p))
                    .filter(|&(i, _)| self.inner.grounding.registry.atom(i).0 == pred)
                    .collect();
                // Descending probability; ties resolve by ascending atom
                // id, so the ranking is deterministic and identical for
                // every concurrent execution.
                ranked.sort_by(|a, b| {
                    b.1.partial_cmp(&a.1)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.0.cmp(&b.0))
                });
                ranked.truncate(*k);
                let entries = ranked
                    .into_iter()
                    .map(|(i, p)| {
                        let atom = self.inner.grounding.registry.ground_atom(i);
                        TopEntry {
                            name: render_atom(&self.inner.program, &atom),
                            atom,
                            probability: p,
                        }
                    })
                    .collect();
                Ok(QueryAnswer::TopK(TopKResult { entries, report }))
            }
        }
    }

    /// Resolves a predicate-name filter to predicate ids (`None` = keep
    /// everything).
    fn predicate_filter(&self, predicates: &[String]) -> Result<Option<Vec<u32>>, MlnError> {
        if predicates.is_empty() {
            return Ok(None);
        }
        let mut ids = Vec::with_capacity(predicates.len());
        for name in predicates {
            let pred = self.inner.program.predicate_by_name(name).ok_or_else(|| {
                MlnError::general(format!("unknown predicate `{name}` in marginal query"))
            })?;
            ids.push(pred.0);
        }
        Ok(Some(ids))
    }

    /// Runs MAP search over this generation, warm-started from `init`
    /// when given (the session path) and from the LazySAT all-false
    /// state otherwise (the stateless snapshot path, identical to the
    /// first map of a fresh session).
    pub(crate) fn execute_map(
        &self,
        init: Option<Vec<bool>>,
        search: &WalkSatParams,
    ) -> (Vec<bool>, Cost, TimeCostTrace, InferenceReport) {
        let config = &self.inner.config;
        let grounding = &self.inner.grounding;
        let mrf = &grounding.mrf;
        let mut report = InferenceReport {
            grounding: grounding.stats.clone(),
            clauses: mrf.clauses().len(),
            atoms: grounding.registry.len(),
            clause_table_bytes: mrf.clause_bytes(),
            ..Default::default()
        };
        // The paper's time axis includes grounding (Figure 3's curves
        // begin when grounding completes).
        let mut trace = TimeCostTrace::with_offset(grounding.stats.wall);
        let search_started = Instant::now();
        let init = init.unwrap_or_else(|| vec![false; mrf.num_atoms()]);
        report.components = self.components();

        let (truth, cost) = match config.architecture {
            Architecture::RdbmsOnly => {
                // Tuffy-mm keeps its state in the buffer pool; it always
                // searches cold.
                let mut rdbms_search =
                    RdbmsSearch::new(mrf, config.pool_pages, config.disk, search.seed);
                let r = rdbms_search.run(search.max_flips, search.noise, None, Some(&mut trace));
                report.flips = r.flips;
                report.search_time = r.wall + r.simulated_io;
                report.flips_per_sec = r.flips_per_sec;
                report.search_ram = mrf.num_atoms() * 2; // truth arrays only
                (r.truth, r.cost)
            }
            Architecture::InMemory => {
                // Alchemy-style: monolithic WalkSAT, not component-aware.
                report.search_ram = MemoryFootprint::of(mrf).total();
                let ws = WalkSat::run_from(mrf, init, search, Some(&mut trace));
                report.flips = ws.flips();
                (ws.best_truth().to_vec(), ws.best_cost())
            }
            Architecture::Hybrid => {
                match config.partitioning {
                    PartitionStrategy::None => {
                        report.search_ram = MemoryFootprint::of(mrf).total();
                        let ws = WalkSat::run_from(mrf, init, search, Some(&mut trace));
                        report.flips = ws.flips();
                        (ws.best_truth().to_vec(), ws.best_cost())
                    }
                    // The PartitionedInference stage: components (or
                    // budget-bounded Algorithm 3 partitions) → FFD bins →
                    // worker pool → Gauss-Seidel rounds over cut clauses.
                    PartitionStrategy::Components | PartitionStrategy::Budget(_) => {
                        // The generation-scoped schedule cache: repeated
                        // queries — from any number of sessions and
                        // threads — skip Algorithm 3 + FFD re-planning.
                        let scheduler = Scheduler::with_schedule(
                            mrf,
                            self.schedule(),
                            self.scheduler_config(search),
                        );
                        let r = scheduler.run_from(&init, Some(&mut trace));
                        report.flips = r.flips;
                        report.search_ram = r.peak_partition_bytes;
                        report.partitions = scheduler.schedule().units.len();
                        report.bins = scheduler.schedule().bins.len();
                        report.rounds = r.rounds_run;
                        (r.truth, r.cost)
                    }
                }
            }
        };

        if report.search_time.is_zero() {
            report.search_time = search_started.elapsed();
        }
        if report.flips_per_sec == 0.0 {
            let secs = report.search_time.as_secs_f64();
            report.flips_per_sec = if secs > 0.0 {
                report.flips as f64 / secs
            } else {
                f64::INFINITY
            };
        }
        (truth, cost, trace, report)
    }

    /// Runs MC-SAT marginal sampling over this generation (Appendix
    /// A.5), returning `P(atom = true)` per atom id plus the run report.
    /// With worker threads or a memory budget configured, MC-SAT runs
    /// per partition through the scheduler; otherwise one sampler covers
    /// the whole MRF.
    pub(crate) fn execute_marginal(
        &self,
        params: &McSatParams,
    ) -> Result<(Vec<f64>, InferenceReport), MlnError> {
        let grounding = &self.inner.grounding;
        let mrf = &grounding.mrf;
        let sample_started = Instant::now();
        let samples = self.marginal_stats(params)?;
        let search_time = sample_started.elapsed();
        let secs = search_time.as_secs_f64();
        let flips = samples.flips;
        let report = InferenceReport {
            grounding: grounding.stats.clone(),
            clauses: mrf.clauses().len(),
            atoms: grounding.registry.len(),
            clause_table_bytes: mrf.clause_bytes(),
            components: self.components(),
            flips,
            search_time,
            flips_per_sec: if secs > 0.0 {
                flips as f64 / secs
            } else {
                f64::INFINITY
            },
            ..Default::default()
        };
        Ok((samples.probs.clone(), report))
    }

    /// Marginal sampling with full sufficient statistics: per-atom
    /// probabilities *and* per-clause satisfaction probabilities — the
    /// `E[nᵢ]` column weight learning reads. Results are cached per
    /// `(generation, params fingerprint)`: marginal inference is
    /// deterministic in those two, so a repeat call (the learning loop
    /// re-issues identical queries every iteration, as does any client
    /// polling a stable generation) returns the cached `Arc` without
    /// re-sampling. [`Snapshot::marginal_cache_hits`] counts the hits.
    ///
    /// Routing matches [`Snapshot::query`]'s marginal path: per-partition
    /// MC-SAT through the scheduler when threads or a memory budget are
    /// configured, one monolithic sampler otherwise.
    pub fn marginal_stats(&self, params: &McSatParams) -> Result<Arc<MarginalSamples>, MlnError> {
        let caches = &self.inner.caches;
        let key = (self.inner.generation, mcsat_fingerprint(params));
        if let Some(hit) = caches.marginals.lock().expect("marginal cache").get(&key) {
            let hit = Arc::clone(hit);
            caches.marginal_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(hit);
        }
        let samples = Arc::new(self.compute_marginal(params)?);
        // First write wins under a race: both computations are
        // bit-identical, so either Arc serves.
        Ok(Arc::clone(
            caches
                .marginals
                .lock()
                .expect("marginal cache")
                .entry(key)
                .or_insert(samples),
        ))
    }

    /// Marginal-cache hits served by this generation's cache set (shared
    /// with same-generation clones and [`Snapshot::relearn`] forks).
    pub fn marginal_cache_hits(&self) -> u64 {
        self.inner.caches.marginal_hits.load(Ordering::Relaxed)
    }

    /// The uncached marginal computation behind
    /// [`Snapshot::marginal_stats`].
    fn compute_marginal(&self, params: &McSatParams) -> Result<MarginalSamples, MlnError> {
        let config = &self.inner.config;
        let mrf = &self.inner.grounding.mrf;
        let partitioned = match config.partitioning {
            PartitionStrategy::None => false, // monolithic by request
            PartitionStrategy::Components => config.threads > 1,
            PartitionStrategy::Budget(_) => true,
        };
        if partitioned {
            let scheduler = Scheduler::with_schedule(
                mrf,
                self.schedule(),
                self.scheduler_config(&config.search),
            );
            scheduler.run_marginal(params)
        } else {
            let mut mc = McSat::new(mrf, params.seed)?;
            let (probs, clause_sat) = mc.marginals_with_clause_stats(params);
            Ok(MarginalSamples {
                probs,
                clause_sat,
                flips: mc.flips(),
            })
        }
    }

    /// Runs MAP search over this generation and returns the raw best
    /// world plus its cost — the voted perceptron's inner call, which
    /// needs atom truth values (to count satisfied clauses) rather than
    /// the rendered [`crate::MapResult`].
    pub fn map_world(&self, search: &WalkSatParams) -> (Vec<bool>, Cost) {
        let (truth, cost, _, _) = self.execute_map(None, search);
        (truth, cost)
    }

    /// Forks a new generation under a new per-rule weight vector —
    /// weight learning's iteration step. O(clauses): the MRF's weight and
    /// violation-cost columns are rebuilt through
    /// [`tuffy_mrf::Mrf::reweight`] while every structural arena
    /// (literals, occurrences, origins, registry, partition schedule,
    /// component counts) is shared with this snapshot, which stays fully
    /// usable — in-flight queries on any generation are undisturbed.
    ///
    /// The forked program carries the new weights on its rules, so a
    /// later re-ground (or a persisted save) reproduces them. Non-finite
    /// weights are hardened exactly like grounding-time merges:
    /// `Soft(+∞)` → `Hard`, `Soft(−∞)` → `NegHard`, NaN → neutral
    /// `Soft(0.0)`.
    ///
    /// Advances the generation counter but performs **no** grounding —
    /// [`crate::Engine::groundings_performed`] is unaffected.
    pub fn relearn(&self, rule_weights: &[Weight]) -> Result<Snapshot, MlnError> {
        let inner = &self.inner;
        if rule_weights.len() != inner.program.rules.len() {
            return Err(MlnError::general(format!(
                "relearn got {} weights for {} rules",
                rule_weights.len(),
                inner.program.rules.len()
            )));
        }
        let sanitized: Vec<Weight> = rule_weights
            .iter()
            .map(|&w| match w {
                Weight::Soft(v) if v == f64::INFINITY => Weight::Hard,
                Weight::Soft(v) if v == f64::NEG_INFINITY => Weight::NegHard,
                Weight::Soft(v) if v.is_nan() => Weight::Soft(0.0),
                w => w,
            })
            .collect();
        let mrf = inner
            .grounding
            .mrf
            .reweight(&sanitized)
            .map_err(MlnError::general)?;
        let mut program = (*inner.program).clone();
        for (rule, &w) in program.rules.iter_mut().zip(&sanitized) {
            rule.weight = w;
        }
        let grounding = GroundingResult {
            mrf,
            registry: inner.grounding.registry.clone(),
            stats: inner.grounding.stats.clone(),
        };
        Ok(Snapshot {
            inner: Arc::new(SnapshotInner {
                program: Arc::new(program),
                evidence: inner.evidence.clone(),
                config: inner.config,
                grounding: Arc::new(grounding),
                generation: inner.counters.next_generation(),
                counters: inner.counters.clone(),
                // Reweighting preserves every structural arena, so the
                // schedule and component caches stay valid; the marginal
                // cache keys on the generation, so stale samples cannot
                // leak across the weight change.
                caches: inner.caches.clone(),
            }),
        })
    }

    /// Forks this generation under an evidence delta, copy-on-write:
    ///
    /// * a delta with no grounding effect shares the grounded store and
    ///   its caches outright (same generation, zero copying);
    /// * a delta in the exact incremental fragment becomes a patched
    ///   copy ([`apply_delta_grounding`] — the old store is untouched);
    /// * anything else re-grounds from the merged evidence.
    ///
    /// `program` is the forked generation's program — the session's
    /// (possibly extended) program for committed applies, this
    /// snapshot's own for ephemeral [`Query::given`] forks. The original
    /// snapshot is never modified; concurrent readers keep their
    /// generation.
    pub(crate) fn fork(
        &self,
        program: &Arc<MlnProgram>,
        delta: &EvidenceDelta,
    ) -> Result<(Snapshot, ApplyReport, ForkWarm), MlnError> {
        let start = Instant::now();
        let inner = &self.inner;
        // Every delta symbol must resolve in the program this fork will
        // ground and render under. A miss means the delta was parsed
        // against a *different* (extended) program — e.g. handed to a
        // bare snapshot instead of the session whose `parse_delta`
        // interned the constants — and proceeding would panic deep in
        // symbol resolution instead of reporting the mismatch.
        for op in &delta.ops {
            let atom = match op {
                tuffy_mln::DeltaOp::Assert { atom, .. }
                | tuffy_mln::DeltaOp::Retract { atom }
                | tuffy_mln::DeltaOp::Flip { atom } => atom,
            };
            if atom
                .args
                .iter()
                .any(|s| s.0 as usize >= program.symbols.len())
            {
                return Err(MlnError::general(
                    "delta references constants unknown to this snapshot's program; \
                     run it through the session whose `parse_delta` interned them",
                ));
            }
        }
        // Stage the evidence edit; the new generation materializes only
        // once the grounding update has succeeded, so a failure cannot
        // produce a snapshot whose evidence disagrees with its store.
        let mut staged = inner.evidence.clone();
        let changes = staged.apply(program, delta)?;
        match apply_delta_grounding(program, &inner.grounding, &changes) {
            DeltaOutcome::Unchanged => {
                let report = ApplyReport {
                    incremental: true,
                    reason: None,
                    changes: changes.len(),
                    wall: start.elapsed(),
                    patch: None,
                    clauses: inner.grounding.mrf.clauses().len(),
                    atoms: inner.grounding.registry.len(),
                };
                // Same grounded store: share the arenas, the generation
                // id, and the analysis caches (one Arc'd set per
                // generation — computed by whichever snapshot needs
                // them first, visible to all).
                let snapshot = Snapshot {
                    inner: Arc::new(SnapshotInner {
                        program: program.clone(),
                        evidence: staged,
                        config: inner.config,
                        grounding: inner.grounding.clone(),
                        generation: inner.generation,
                        counters: inner.counters.clone(),
                        caches: inner.caches.clone(),
                    }),
                };
                Ok((snapshot, report, ForkWarm::Unchanged))
            }
            DeltaOutcome::Patched(patched) => {
                let report = ApplyReport {
                    incremental: true,
                    reason: None,
                    changes: changes.len(),
                    wall: start.elapsed(),
                    patch: Some(patched.stats),
                    clauses: patched.grounding.mrf.clauses().len(),
                    atoms: patched.grounding.registry.len(),
                };
                let snapshot = Snapshot {
                    inner: Arc::new(SnapshotInner {
                        program: program.clone(),
                        evidence: staged,
                        config: inner.config,
                        grounding: Arc::new(patched.grounding),
                        generation: inner.counters.next_generation(),
                        counters: inner.counters.clone(),
                        caches: Arc::new(GenerationCaches::default()),
                    }),
                };
                Ok((snapshot, report, ForkWarm::Remap(patched.remap)))
            }
            DeltaOutcome::NeedsFullReground { reason } => {
                let fresh = ground(program, &staged, &inner.config)?;
                inner.counters.record_grounding();
                let report = ApplyReport {
                    incremental: false,
                    reason: Some(reason),
                    changes: changes.len(),
                    wall: start.elapsed(),
                    patch: None,
                    clauses: fresh.mrf.clauses().len(),
                    atoms: fresh.registry.len(),
                };
                let snapshot = Snapshot {
                    inner: Arc::new(SnapshotInner {
                        program: program.clone(),
                        evidence: staged,
                        config: inner.config,
                        grounding: Arc::new(fresh),
                        generation: inner.counters.next_generation(),
                        counters: inner.counters.clone(),
                        caches: Arc::new(GenerationCaches::default()),
                    }),
                };
                Ok((snapshot, report, ForkWarm::Reground))
            }
        }
    }
}
