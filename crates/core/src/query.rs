//! First-class queries: what to infer, over which evidence, with which
//! knobs.
//!
//! The one-shot API answered every request with the whole world. A
//! [`Query`] names the *shape* of the answer instead:
//!
//! * [`Query::map`] — the most likely world ([`crate::MapResult`]);
//! * [`Query::marginal`] — per-atom probabilities, optionally restricted
//!   to a set of predicates ([`crate::MarginalResult`]);
//! * [`Query::top_k`] — the `k` most probable atoms of one predicate
//!   ([`crate::TopKResult`]);
//!
//! optionally refined by
//!
//! * [`Query::given`] — ephemeral conditioning: the query runs against a
//!   copy-on-write fork of the snapshot with the delta applied, without
//!   committing any evidence;
//! * [`Query::with_search`] / [`Query::with_mcsat`] — per-query
//!   parameter overrides. Without them a query reads the engine's
//!   [`crate::TuffyConfig`] implicitly — MAP and marginal symmetrically.
//!
//! Queries are plain data (`Clone + Send + Sync`) and are executed by
//! [`crate::Snapshot::query`], which is safe to call from many threads
//! at once, or by [`crate::Session::query`], which adds warm-started
//! search for repeated MAP queries.

use tuffy_mln::evidence::EvidenceDelta;
use tuffy_search::mcsat::McSatParams;
use tuffy_search::WalkSatParams;

/// What a query computes.
#[derive(Clone, Debug, Default)]
pub(crate) enum QueryKind {
    /// The most likely world.
    #[default]
    Map,
    /// Per-atom marginal probabilities, restricted to the named
    /// predicates (all query predicates when empty).
    Marginal(Vec<String>),
    /// The `k` most probable atoms of one predicate.
    TopK { predicate: String, k: usize },
}

/// A declarative inference request executed by
/// [`crate::Snapshot::query`] or [`crate::Session::query`].
#[derive(Clone, Debug, Default)]
pub struct Query {
    pub(crate) kind: QueryKind,
    pub(crate) given: Option<EvidenceDelta>,
    pub(crate) search: Option<WalkSatParams>,
    pub(crate) mcsat: Option<McSatParams>,
}

impl Query {
    /// A MAP query: the most likely world.
    pub fn map() -> Query {
        Query::default()
    }

    /// A marginal query over the named predicates; pass an empty
    /// iterator (e.g. `Query::marginal::<[&str; 0]>([])` or
    /// [`Query::marginal_all`]) for every query predicate.
    pub fn marginal<I, S>(predicates: I) -> Query
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Query {
            kind: QueryKind::Marginal(predicates.into_iter().map(Into::into).collect()),
            ..Query::default()
        }
    }

    /// A marginal query over every query predicate.
    pub fn marginal_all() -> Query {
        Query {
            kind: QueryKind::Marginal(Vec::new()),
            ..Query::default()
        }
    }

    /// The `k` most probable atoms of `predicate` (by marginal
    /// probability, ties broken deterministically by atom id).
    pub fn top_k(predicate: &str, k: usize) -> Query {
        Query {
            kind: QueryKind::TopK {
                predicate: predicate.to_string(),
                k,
            },
            ..Query::default()
        }
    }

    /// Conditions the query on an ephemeral evidence delta: execution
    /// forks the snapshot copy-on-write, applies `delta` to the fork,
    /// answers against it, and discards it — no evidence is committed
    /// and concurrent readers of the original snapshot are unaffected.
    pub fn given(mut self, delta: EvidenceDelta) -> Query {
        self.given = Some(delta);
        self
    }

    /// Overrides the WalkSAT parameters for this query (MAP and the MAP
    /// conditioning pass of cut-clause marginals). Defaults to the
    /// engine configuration's `search`.
    pub fn with_search(mut self, params: WalkSatParams) -> Query {
        self.search = Some(params);
        self
    }

    /// Overrides the MC-SAT parameters for this query (marginal and
    /// top-k). Defaults to the engine configuration's `mcsat`.
    pub fn with_mcsat(mut self, params: McSatParams) -> Query {
        self.mcsat = Some(params);
        self
    }

    /// The ephemeral conditioning delta, if any.
    pub fn given_delta(&self) -> Option<&EvidenceDelta> {
        self.given.as_ref()
    }

    /// Whether this is a plain MAP query (no conditioning delta) — the
    /// shape [`crate::Session::query`] can warm-start.
    pub(crate) fn is_plain_map(&self) -> bool {
        matches!(self.kind, QueryKind::Map) && self.given.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_set_the_kind() {
        assert!(matches!(Query::map().kind, QueryKind::Map));
        assert!(
            matches!(Query::marginal(["cat"]).kind, QueryKind::Marginal(p) if p == vec!["cat"])
        );
        assert!(matches!(Query::marginal_all().kind, QueryKind::Marginal(p) if p.is_empty()));
        assert!(
            matches!(Query::top_k("cat", 3).kind, QueryKind::TopK { predicate, k } if predicate == "cat" && k == 3)
        );
    }

    #[test]
    fn plain_map_detection() {
        assert!(Query::map().is_plain_map());
        assert!(!Query::map().given(Default::default()).is_plain_map());
        assert!(!Query::marginal_all().is_plain_map());
    }
}
